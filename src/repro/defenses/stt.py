"""Speculative Taint Tracking (STT-Default), the delay-USE baseline.

STT (MICRO'19) taints the result of every load executed speculatively and
delays *transmitters* — instructions that could encode the tainted value
into a microarchitectural channel — until the root load reaches its
visibility point (no older unresolved branch), at which point the taint
lifts.  We model STT-Default, the variant the paper compares against
(§5.1): explicit channels only, i.e. loads and stores whose address (or
store data) is tainted.  Implicit/contention channels (tainted ALU latency,
port pressure, branch resolution) are *not* delayed, which is why STT offers
only limited mitigation against SCC attacks; and a bound-to-commit load that
transiently receives stale LFB/store-buffer data is never tainted at all,
which is why MDS evades it (§4.1, Table 1).
"""

from __future__ import annotations

from repro.core.policy import DefensePolicy
from repro.pipeline.dyninstr import DynInstr


class STTPolicy(DefensePolicy):
    """Delay tainted transmitters until their taint roots become visible."""

    name = "stt"
    #: Cycles for the untaint event to propagate once a root reaches its
    #: visibility point.  STT's untaint is a wakeup-like broadcast walking
    #: the dependence graph, not an instant oracle; transmitters stay
    #: delayed while it drains.
    UNTAINT_LATENCY = 6

    def _root_tainted(self, root_seq: int) -> bool:
        if self.core.taint_root_still_speculative(root_seq):
            return True
        root = self.core.in_flight(root_seq)
        if root is None or not root.completed:
            return False
        return (root.speculative_at_complete
                and self.core.cycle < root.complete_cycle + self.UNTAINT_LATENCY)

    def _tainted(self, dyn: DynInstr) -> bool:
        return any(self._root_tainted(root) for root in dyn.taint_roots)

    def may_issue(self, dyn: DynInstr) -> bool:
        # Transmitters: loads (tainted address would leak through the cache)
        # and stores (tainted address/data would leak through the store
        # buffer / RFO traffic).
        if not dyn.static.is_memory:
            return True
        return not self._tainted(dyn)

    def may_forward_store(self, store: DynInstr, load: DynInstr) -> bool:
        # STT does not change store-buffer behaviour.
        return True
