"""Composition of defenses — SpecASan+CFI (§4.2, Figure 9).

The composite consults every member policy at each hook: permission hooks
AND together (any member may refuse), request flags OR together, and
lifecycle notifications fan out.  ``restricted_seqs`` aggregates across
members so Figure 8's restriction metric counts an instruction once even if
both members delayed it.
"""

from __future__ import annotations

from typing import List, TYPE_CHECKING

from repro.core.policy import DefensePolicy, RequestFlags
from repro.pipeline.dyninstr import DynInstr

if TYPE_CHECKING:  # pragma: no cover
    from repro.memory.request import MemResponse
    from repro.pipeline.core import Core


class CompositePolicy(DefensePolicy):
    """AND/OR composition of several defense policies."""

    def __init__(self, members: List[DefensePolicy], name: str = ""):
        super().__init__()
        if not members:
            raise ValueError("composite policy needs at least one member")
        self.members = members
        self.name = name or "+".join(m.name for m in members)
        self.mte_enabled = any(m.mte_enabled for m in members)
        self.cfi_validation_bubble = max(
            m.cfi_validation_bubble for m in members)
        for member in members:
            member.restricted_seqs = self.restricted_seqs

    def attach(self, core: "Core") -> None:
        super().attach(core)
        for member in self.members:
            member.attach(core)
            # Share one restriction set so Figure 8 counts each dynamic
            # instruction at most once.
            member.restricted_seqs = self.restricted_seqs

    # -- checkpointing --------------------------------------------------------

    def state_dict(self) -> dict:
        state = super().state_dict()
        state["members"] = [m.state_dict() for m in self.members]
        return state

    def load_state_dict(self, state: dict) -> None:
        members = state.get("members", ())
        if len(members) != len(self.members):
            from repro.errors import CheckpointError
            raise CheckpointError(
                f"composite has {len(self.members)} members, checkpoint "
                f"has {len(members)}", kind="state-mismatch")
        super().load_state_dict(state)
        # Members alias this policy's restricted_seqs; each member reload
        # repopulates the shared set with identical content, preserving the
        # aliasing invariant the constructor establishes.
        for member, sub in zip(self.members, members):
            member.load_state_dict(sub)

    # -- permission hooks: all members must agree ---------------------------

    def fetch_may_follow_indirect(self, dyn: DynInstr, target: int) -> bool:
        return all(m.fetch_may_follow_indirect(dyn, target)
                   for m in self.members)

    def may_issue(self, dyn: DynInstr) -> bool:
        return all(m.may_issue(dyn) for m in self.members)

    def may_issue_load(self, dyn: DynInstr) -> bool:
        return all(m.may_issue_load(dyn) for m in self.members)

    def may_forward_store(self, store: DynInstr, load: DynInstr) -> bool:
        return all(m.may_forward_store(store, load) for m in self.members)

    def must_hold_bypass_data(self, load: DynInstr) -> bool:
        return any(m.must_hold_bypass_data(load) for m in self.members)

    def on_call_fetched(self, dyn: DynInstr, return_address: int) -> None:
        for member in self.members:
            member.on_call_fetched(dyn, return_address)

    def predict_return(self, dyn: DynInstr, rsb_prediction):
        prediction = rsb_prediction
        for member in self.members:
            prediction = member.predict_return(dyn, prediction)
        return prediction

    # -- request flags: strictest combination --------------------------------

    def request_flags(self, dyn: DynInstr) -> RequestFlags:
        flags = [m.request_flags(dyn) for m in self.members]
        return RequestFlags(
            check_tag=any(f.check_tag for f in flags),
            block_fill_on_mismatch=any(f.block_fill_on_mismatch for f in flags),
            fill_to_minion=any(f.fill_to_minion for f in flags),
            allow_stale_forward=all(f.allow_stale_forward for f in flags))

    def on_load_data_ready(self, dyn: DynInstr, response: "MemResponse") -> bool:
        return all(m.on_load_data_ready(dyn, response) for m in self.members)

    # -- notifications: fan out ------------------------------------------------

    def on_tag_outcome(self, dyn: DynInstr, tag_ok: bool) -> None:
        for member in self.members:
            member.on_tag_outcome(dyn, tag_ok)

    def on_execute(self, dyn: DynInstr) -> None:
        for member in self.members:
            member.on_execute(dyn)

    def on_branch_resolved(self, dyn: DynInstr, mispredicted: bool) -> None:
        for member in self.members:
            member.on_branch_resolved(dyn, mispredicted)

    def on_squash(self, from_seq: int) -> None:
        for member in self.members:
            member.on_squash(from_seq)

    def on_commit(self, dyn: DynInstr) -> None:
        for member in self.members:
            member.on_commit(dyn)
