"""SpecCFI: control-flow integrity enforced on the speculative path.

SpecCFI (S&P'20) validates *predicted* indirect-branch targets against the
program's CFI labels before fetch may proceed down them; returns are
predicted only through a shadow stack.  We follow the paper's ARM port
(§5.1): binaries carry BTI landing pads at every legitimate indirect target
(our workload generators and gadgets emit them), the front end refuses to
follow a predicted `BR`/`BLR` target that does not decode to `BTI`, and the
RSB acts as the trusted shadow stack for `RET` prediction.

A refused prediction stalls fetch until the branch resolves — the small
(≈2.6% geomean) overhead of Figure 9.
"""

from __future__ import annotations

from repro.core.policy import DefensePolicy
from repro.isa.instructions import Opcode
from repro.pipeline.dyninstr import DynInstr


class SpecCFIPolicy(DefensePolicy):
    """Refuse speculation to indirect targets without BTI landing pads."""

    name = "speccfi"
    cfi_validation_bubble = 1
    #: Depth of the protected shadow stack (deeper than the 16-entry RSB, so
    #: RSB wrap-around pollution cannot steer return prediction).
    SHADOW_DEPTH = 64

    def __init__(self) -> None:
        super().__init__()
        self._shadow: list = []
        #: Undo log of speculative shadow operations: (seq, kind, value).
        #: Real SpecCFI checkpoints the shadow stack across speculation; the
        #: log replays the inverse operations when a squash rolls fetch back.
        self._ops: list = []

    def fetch_may_follow_indirect(self, dyn: DynInstr, target: int) -> bool:
        if dyn.static.op is Opcode.RET:
            # Returns are predicted through the shadow stack (see
            # predict_return); a shadow-predicted target is trusted.
            return True
        return self.core.target_is_landing_pad(target)

    def on_call_fetched(self, dyn: DynInstr, return_address: int) -> None:
        if len(self._shadow) >= self.SHADOW_DEPTH:
            self._shadow.pop(0)
        self._shadow.append(return_address)
        self._ops.append((dyn.seq, "push", return_address))

    def predict_return(self, dyn: DynInstr, rsb_prediction):
        # The shadow stack overrides the (pollutable) RSB prediction.
        if self._shadow:
            value = self._shadow.pop()
            self._ops.append((dyn.seq, "pop", value))
            return value
        return rsb_prediction

    def on_squash(self, from_seq: int) -> None:
        while self._ops and self._ops[-1][0] >= from_seq:
            _, kind, value = self._ops.pop()
            if kind == "push":
                if self._shadow and self._shadow[-1] == value:
                    self._shadow.pop()
            else:  # undo a pop
                self._shadow.append(value)

    def on_commit(self, dyn: DynInstr) -> None:
        # Committed entries can never be rolled back; trim the undo log.
        if self._ops and dyn.is_branch:
            self._ops = [op for op in self._ops if op[0] > dyn.seq]

    def state_dict(self) -> dict:
        state = super().state_dict()
        state["shadow"] = list(self._shadow)
        state["ops"] = [list(op) for op in self._ops]
        return state

    def load_state_dict(self, state: dict) -> None:
        super().load_state_dict(state)
        self._shadow = list(state["shadow"])
        self._ops = [(seq, kind, value) for seq, kind, value in state["ops"]]
