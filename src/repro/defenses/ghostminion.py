"""GhostMinion: the delay-TRANSMIT (shadow-structure) baseline.

GhostMinion (MICRO'21) lets speculative loads execute but captures their
cache fills in a small strictness-ordered "MinionCache"; the line becomes
architecturally visible (promoted to L1) only when the load commits.
Squashed loads therefore leave no trace in the primary hierarchy — Spectre's
TRANSMIT stage is hidden.  It does not stop the *access* itself, so
contention channels and stale-data (MDS) forwards still leak (Table 1).

The modelled overhead sources match the original's: shadow-capacity
evictions force refetches, and speculative hits that would have warmed L1
stay confined until commit.
"""

from __future__ import annotations

from repro.core.policy import DefensePolicy, RequestFlags
from repro.pipeline.dyninstr import DynInstr


class GhostMinionPolicy(DefensePolicy):
    """Redirect speculative fills into the MinionCache; promote at commit."""

    name = "ghostminion"

    def request_flags(self, dyn: DynInstr) -> RequestFlags:
        return RequestFlags(fill_to_minion=True, allow_stale_forward=True)

    def on_commit(self, dyn: DynInstr) -> None:
        if dyn.is_load and dyn.response is not None:
            self.core.hierarchy.promote_minion(
                dyn.response.line_address, self.core.core_id)

    def on_squash(self, from_seq: int) -> None:
        # Strictness ordering: shadow lines of squashed loads vanish.
        self.core.hierarchy.squash_minion(self.core.core_id, from_seq)
