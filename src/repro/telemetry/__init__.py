"""Observability for the simulator: stats registry, tracing, occupancy.

Three layers, all optional and zero-overhead when unused:

- :mod:`repro.telemetry.registry` — a gem5-style hierarchical statistics
  registry (scalars, bound views over the flat stats dataclasses,
  distributions, derived formulas) with ``dump()`` / ``reset()`` / ``render()``;
- :mod:`repro.telemetry.trace` — cycle-accurate pipeline event tracing to
  gem5 O3PipeView (Konata-compatible) and JSONL;
- :mod:`repro.telemetry.occupancy` — ROB/IQ/LQ/SQ/MSHR/LFB occupancy
  histograms plus the speculation-shadow-length and restriction-delay
  distributions behind the paper's Figure 8.

``python -m repro.telemetry`` renders traces and runs traced simulations;
see :mod:`repro.telemetry.__main__`.
"""

from repro.telemetry.occupancy import OccupancyProfiler
from repro.telemetry.registry import (
    CORE_FORMULAS,
    HIERARCHY_FORMULAS,
    BoundScalar,
    Distribution,
    Formula,
    Scalar,
    StatsRegistry,
    core_registry,
    hierarchy_registry,
    ratio,
    system_registry,
)
from repro.telemetry.render import (
    render_stats_dump,
    render_timeline,
    render_trace_summary,
)
from repro.telemetry.trace import (
    DEFENSE_EVENTS,
    TICKS_PER_CYCLE,
    TRACE_SCHEMA_VERSION,
    PipelineTracer,
    TraceSink,
    load_trace,
    parse_jsonl,
    parse_o3pipeview,
)

__all__ = [
    "BoundScalar",
    "CORE_FORMULAS",
    "core_registry",
    "DEFENSE_EVENTS",
    "Distribution",
    "Formula",
    "HIERARCHY_FORMULAS",
    "hierarchy_registry",
    "load_trace",
    "OccupancyProfiler",
    "parse_jsonl",
    "parse_o3pipeview",
    "PipelineTracer",
    "ratio",
    "render_stats_dump",
    "render_timeline",
    "render_trace_summary",
    "Scalar",
    "StatsRegistry",
    "system_registry",
    "TICKS_PER_CYCLE",
    "TRACE_SCHEMA_VERSION",
    "TraceSink",
]
