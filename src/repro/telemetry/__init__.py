"""Observability for the simulator: stats registry, tracing, occupancy.

Three layers, all optional and zero-overhead when unused:

- :mod:`repro.telemetry.registry` — a gem5-style hierarchical statistics
  registry (scalars, bound views over the flat stats dataclasses,
  distributions, derived formulas) with ``dump()`` / ``reset()`` / ``render()``;
- :mod:`repro.telemetry.trace` — cycle-accurate pipeline event tracing to
  gem5 O3PipeView (Konata-compatible) and JSONL;
- :mod:`repro.telemetry.occupancy` — ROB/IQ/LQ/SQ/MSHR/LFB occupancy
  histograms plus the speculation-shadow-length and restriction-delay
  distributions behind the paper's Figure 8;
- :mod:`repro.telemetry.obs` — the request-scoped observability plane:
  trace IDs, typed spans with parent/child links (JSONL span logs), the
  bounded always-on :class:`~repro.telemetry.obs.FlightRecorder`, and
  collapsed-stack profiling output;
- :mod:`repro.telemetry.prometheus` — Prometheus text-format exposition
  snapshots over any :class:`~repro.telemetry.registry.StatsRegistry`.

``python -m repro.telemetry`` renders traces, runs traced simulations,
and renders span logs (``--spans``); see :mod:`repro.telemetry.__main__`.
"""

from repro.telemetry.obs import (
    FlightRecorder,
    Span,
    SpanRecorder,
    load_spans,
    new_trace_id,
    parse_spans,
    render_span_tree,
)
from repro.telemetry.occupancy import OccupancyProfiler
from repro.telemetry.prometheus import render_prometheus
from repro.telemetry.registry import (
    CORE_FORMULAS,
    HIERARCHY_FORMULAS,
    LATENCY_PERCENTILES,
    BoundScalar,
    Distribution,
    Formula,
    LatencyHistogram,
    Scalar,
    StatsRegistry,
    core_registry,
    hierarchy_registry,
    ratio,
    system_registry,
)
from repro.telemetry.render import (
    render_stats_dump,
    render_timeline,
    render_trace_summary,
)
from repro.telemetry.trace import (
    DEFENSE_EVENTS,
    TICKS_PER_CYCLE,
    TRACE_SCHEMA_VERSION,
    PipelineTracer,
    TraceSink,
    load_trace,
    parse_jsonl,
    parse_o3pipeview,
)

__all__ = [
    "BoundScalar",
    "CORE_FORMULAS",
    "core_registry",
    "DEFENSE_EVENTS",
    "Distribution",
    "FlightRecorder",
    "Formula",
    "HIERARCHY_FORMULAS",
    "hierarchy_registry",
    "LATENCY_PERCENTILES",
    "LatencyHistogram",
    "load_spans",
    "load_trace",
    "new_trace_id",
    "OccupancyProfiler",
    "parse_jsonl",
    "parse_o3pipeview",
    "parse_spans",
    "PipelineTracer",
    "ratio",
    "render_prometheus",
    "render_span_tree",
    "render_stats_dump",
    "render_timeline",
    "render_trace_summary",
    "Scalar",
    "Span",
    "SpanRecorder",
    "StatsRegistry",
    "system_registry",
    "TICKS_PER_CYCLE",
    "TRACE_SCHEMA_VERSION",
    "TraceSink",
]
