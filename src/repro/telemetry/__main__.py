"""CLI: render pipeline traces and run traced simulations.

Render an existing trace (either format)::

    python -m repro.telemetry trace.jsonl
    python -m repro.telemetry trace.o3pipeview --limit 40

Run one attack PoC traced end to end (writes ``<out>.o3pipeview``,
``<out>.jsonl``, and ``<out>.stats.json``, then renders the timeline)::

    python -m repro.telemetry --run spectre-v1 --defense specasan --out /tmp/sv1
    python -m repro.telemetry --run spectre-v1 --profile   # cProfile the run

``--profile --out X`` additionally writes ``X.prof`` (the raw cProfile
dump) and ``X.collapsed`` (flamegraph-compatible collapsed stacks).

Render a request/cell span log (service or campaign ``spans.jsonl``)::

    python -m repro.telemetry --spans run/spans.jsonl [--trace-id ab12cd34...]

Determinism guard (used by the CI ``telemetry-smoke`` job): run one traced
simulation twice with the same seed, assert byte-identical trace output and
that the trace's commit/squash counts reconcile exactly with CoreStats::

    python -m repro.telemetry --selftest
"""

from __future__ import annotations

import argparse
import io
import json
import sys

from repro.telemetry.occupancy import OccupancyProfiler
from repro.telemetry.render import (render_stats_dump, render_timeline,
                                    render_trace_summary)
from repro.telemetry.trace import PipelineTracer, load_trace, parse_jsonl


def _parse_defense(name: str):
    from repro.config import DefenseKind
    for kind in DefenseKind:
        if kind.value == name:
            return kind
    raise SystemExit(f"unknown defense {name!r}; one of: "
                     + ", ".join(k.value for k in DefenseKind))


def _traced_system(defense, tracer, occupancy):
    from repro.config import CORTEX_A76
    from repro.system import build_system
    system = build_system(CORTEX_A76.with_defense(defense))
    system.tracer = tracer
    system.occupancy = occupancy
    return system


def _run_traced_attack(attack_name: str, defense, tracer,
                       occupancy, max_cycles=None, profile: bool = False,
                       profile_out: str = ""):
    """Run one attack PoC (first variant) on a traced system."""
    from repro.attacks import REGISTRY
    from repro.errors import DeadlockError, SimulationError
    if attack_name not in REGISTRY:
        raise SystemExit(f"unknown attack {attack_name!r}; one of: "
                         + ", ".join(sorted(REGISTRY)))
    attack = REGISTRY[attack_name][0][1]()
    system = _traced_system(defense, tracer, occupancy)
    core = system.prepare(attack.builder_program)
    core.secret_ranges = [(attack.secret_address,
                           attack.secret_address + attack.secret_size)]

    def measured():
        try:
            core.run(max_cycles=max_cycles or attack.max_cycles)
        except (DeadlockError, SimulationError) as exc:
            print(f"note: run ended early: {exc}", file=sys.stderr)

    if profile:
        import cProfile
        import pstats
        from repro.telemetry.obs import write_collapsed
        profiler = cProfile.Profile()
        profiler.runcall(measured)
        pstats.Stats(profiler, stream=sys.stderr).sort_stats(
            "cumulative").print_stats(25)
        if profile_out:
            prof_path = f"{profile_out}.prof"
            collapsed_path = f"{profile_out}.collapsed"
            profiler.dump_stats(prof_path)
            frames = write_collapsed(profiler, collapsed_path)
            print(f"wrote {prof_path} and {collapsed_path} "
                  f"({frames} collapsed stacks — feed to flamegraph.pl "
                  "or speedscope)", file=sys.stderr)
    else:
        measured()
    tracer.close()
    return system, core


def _render_records(records, summary, args) -> None:
    print(render_timeline(records, width=args.width, limit=args.limit))
    print()
    print(render_trace_summary(records, summary))


def _selftest(args) -> int:
    """Run the same traced simulation twice; any divergence is a bug."""
    from repro.workloads import SPEC_BY_NAME
    from repro.workloads.generator import generate

    defense = _parse_defense(args.defense)
    profile = SPEC_BY_NAME["502.gcc_r"]

    def one_run():
        o3, jsonl = io.StringIO(), io.StringIO()
        tracer = PipelineTracer(o3, jsonl)
        occupancy = OccupancyProfiler()
        program = generate(profile, seed=args.seed,
                           target_instructions=1500,
                           mte_instrumented=True).program
        system = _traced_system(defense, tracer, occupancy)
        core = system.prepare(program)
        core.run()
        tracer.close()
        return o3.getvalue(), jsonl.getvalue(), tracer, core, system

    o3_a, jsonl_a, tracer_a, core_a, system_a = one_run()
    o3_b, jsonl_b, tracer_b, _, _ = one_run()

    failures = []
    if o3_a != o3_b:
        failures.append("O3PipeView outputs differ between identical runs")
    if jsonl_a != jsonl_b:
        failures.append("JSONL outputs differ between identical runs")
    if not o3_a.startswith("O3PipeView:fetch:"):
        failures.append("O3PipeView output missing fetch header line")
    if tracer_a.committed != core_a.stats.committed:
        failures.append(f"trace committed={tracer_a.committed} != "
                        f"CoreStats.committed={core_a.stats.committed}")
    if tracer_a.squashed != core_a.stats.squashed:
        failures.append(f"trace squashed={tracer_a.squashed} != "
                        f"CoreStats.squashed={core_a.stats.squashed}")
    records, summary = parse_jsonl(jsonl_a.splitlines())
    if len(records) != tracer_a.records:
        failures.append(f"parsed {len(records)} records, "
                        f"tracer wrote {tracer_a.records}")
    if summary is None or summary["committed"] != tracer_a.committed:
        failures.append("JSONL summary record missing or inconsistent")

    _render_records(records[:40], summary, args)
    print()
    print(render_stats_dump(system_a.stats_registry().dump()))
    print()
    if failures:
        for failure in failures:
            print(f"SELFTEST FAIL: {failure}", file=sys.stderr)
        return 1
    print(f"selftest ok: {tracer_a.records} records byte-identical across "
          f"two seed={args.seed} runs; commit/squash counts reconcile "
          f"({tracer_a.committed}/{tracer_a.squashed})")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.telemetry",
        description="Render pipeline traces / run traced simulations.")
    parser.add_argument("trace", nargs="?",
                        help="trace file to render (O3PipeView or JSONL)")
    parser.add_argument("--run", metavar="ATTACK",
                        help="run this attack PoC traced (e.g. spectre-v1)")
    parser.add_argument("--defense", default="specasan",
                        help="defense for --run/--selftest (default specasan)")
    parser.add_argument("--out", default=None,
                        help="output prefix for --run trace/stats files")
    parser.add_argument("--max-cycles", type=int, default=None)
    parser.add_argument("--profile", action="store_true",
                        help="run --run under cProfile (report on stderr; "
                             "with --out also writes <out>.prof and "
                             "flamegraph-compatible <out>.collapsed)")
    parser.add_argument("--spans", metavar="SPANS_JSONL",
                        help="render a span log (service/campaign "
                             "spans.jsonl) as per-trace span trees")
    parser.add_argument("--trace-id", default=None,
                        help="with --spans: only render this trace")
    parser.add_argument("--selftest", action="store_true",
                        help="determinism + reconciliation guard (CI)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--width", type=int, default=72,
                        help="timeline width in columns")
    parser.add_argument("--limit", type=int, default=64,
                        help="max instructions to draw (default 64)")
    args = parser.parse_args(argv)

    if args.selftest:
        return _selftest(args)

    if args.spans:
        from repro.telemetry.obs import load_spans, render_span_tree
        spans = load_spans(args.spans)
        if not spans:
            print(f"(no span records in {args.spans})")
            return 0
        print(render_span_tree(spans, trace_id=args.trace_id))
        return 0

    if args.run:
        defense = _parse_defense(args.defense)
        if args.out:
            o3_path = f"{args.out}.o3pipeview"
            jsonl_path = f"{args.out}.jsonl"
        else:
            o3_path, jsonl_path = None, io.StringIO()
        tracer = PipelineTracer(o3_path, jsonl_path)
        occupancy = OccupancyProfiler()
        system, core = _run_traced_attack(
            args.run, defense, tracer, occupancy,
            max_cycles=args.max_cycles, profile=args.profile,
            profile_out=args.out or "")
        if args.out:
            with open(jsonl_path, encoding="utf-8") as handle:
                records, summary = parse_jsonl(handle)
            stats_path = f"{args.out}.stats.json"
            with open(stats_path, "w", encoding="utf-8") as handle:
                json.dump(system.stats_registry().dump(), handle, indent=2)
                handle.write("\n")
            print(f"wrote {o3_path}, {jsonl_path}, {stats_path}\n")
        else:
            records, summary = parse_jsonl(
                jsonl_path.getvalue().splitlines())
        _render_records(records, summary, args)
        print()
        print(render_stats_dump(system.stats_registry().dump()))
        return 0

    if not args.trace:
        parser.print_usage()
        return 2
    records, summary = load_trace(args.trace)
    _render_records(records, summary, args)
    return 0


if __name__ == "__main__":
    sys.exit(main())
