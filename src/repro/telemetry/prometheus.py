"""Prometheus text-format exposition over a :class:`StatsRegistry`.

:func:`render_prometheus` snapshots a registry as the plain-text format
(version 0.0.4) every Prometheus-compatible scraper consumes — no client
library, no third-party deps:

- :class:`~repro.telemetry.registry.Scalar` / ``BoundScalar`` /
  ``Formula`` become gauges (the registry does not distinguish
  monotonicity, and gauges are always safe to scrape);
- :class:`~repro.telemetry.registry.Distribution` (and
  ``LatencyHistogram``) become native histograms: cumulative
  ``_bucket{le="..."}`` series from the fixed bucket bounds, plus
  ``_sum`` and ``_count``.

Dotted stat names map to the metric namespace by replacing every
non-``[a-zA-Z0-9_]`` character with ``_`` (``service.tier.static`` →
``repro_service_tier_static``), the standard flattening.
"""

from __future__ import annotations

import math
import re
from typing import List

from repro.telemetry.registry import Distribution, Formula, StatsRegistry

_NAME_RE = re.compile(r"[^a-zA-Z0-9_]")


def metric_name(dotted: str, namespace: str = "repro") -> str:
    """``service.cache.hit-rate`` -> ``repro_service_cache_hit_rate``."""
    flat = _NAME_RE.sub("_", dotted)
    name = f"{namespace}_{flat}" if namespace else flat
    if name and name[0].isdigit():
        name = "_" + name
    return name


def _fmt(value) -> str:
    if value is None:
        return "NaN"
    number = float(value)
    if math.isinf(number):
        return "+Inf" if number > 0 else "-Inf"
    if number == int(number) and abs(number) < 1e15:
        return str(int(number))
    return repr(number)


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _histogram_lines(name: str, stat: Distribution,
                     lines: List[str]) -> None:
    lines.append(f"# TYPE {name} histogram")
    cumulative = 0
    for bucket, count in sorted(stat.buckets.items()):
        cumulative += count
        _, hi = stat.bucket_bounds(bucket)
        lines.append(f'{name}_bucket{{le="{_fmt(hi)}"}} {cumulative}')
    lines.append(f'{name}_bucket{{le="+Inf"}} {stat.count}')
    lines.append(f"{name}_sum {_fmt(stat.total)}")
    lines.append(f"{name}_count {stat.count}")


def render_prometheus(registry: StatsRegistry,
                      namespace: str = "repro") -> str:
    """One exposition snapshot of every stat in ``registry``."""
    lines: List[str] = []
    for dotted, stat in registry.items():
        name = metric_name(dotted, namespace)
        if stat.desc:
            lines.append(f"# HELP {name} {_escape_help(stat.desc)}")
        if isinstance(stat, Distribution):
            _histogram_lines(name, stat, lines)
            continue
        lines.append(f"# TYPE {name} gauge")
        try:
            value = stat.value
        except ZeroDivisionError:  # defensive: formulas should ratio()
            value = None
        if isinstance(stat, Formula) or isinstance(value, (int, float)) \
                or value is None:
            lines.append(f"{name} {_fmt(value)}")
        else:   # non-numeric stat: expose presence, not the value
            lines.append(f"{name} 1")
    return "\n".join(lines) + "\n"
