"""A gem5-style hierarchical statistics registry.

The simulator's end-of-run counters (:class:`~repro.pipeline.stats.CoreStats`,
:class:`~repro.memory.hierarchy.HierarchyStats`) are plain dataclasses so the
hot simulation loops pay nothing for bookkeeping beyond an integer add.  This
module layers structure *on top* of those objects:

- :class:`Scalar` — a registry-owned counter;
- :class:`BoundScalar` — a view over an attribute of an existing stats
  object, so ``core.stats.committed += 1`` call sites keep their flat, fast
  attribute API while the registry still dumps and resets the value;
- :class:`Distribution` — a sampled histogram with mean/stdev, the shape
  occupancy profiles and latency distributions need;
- :class:`Formula` — a derived metric evaluated lazily at dump time.

Names are dot-scoped (``core0.commit.committed``) like gem5's statistics
tree; :meth:`StatsRegistry.dump` returns the matching nested dict and
:meth:`StatsRegistry.render` the flat ``stats.txt``-style table.

The ratio formulas every harness derives (IPC, mispredict rate, Figure 8's
restricted fraction) are defined exactly once here — ``CORE_FORMULAS`` /
``HIERARCHY_FORMULAS`` — and reused by the dataclass properties, the
experiment harness, and the campaign render paths.
"""

from __future__ import annotations

import math
from dataclasses import fields as dataclass_fields
from typing import Callable, Dict, Iterable, List, Optional, Tuple


def ratio(numerator: float, denominator: float) -> float:
    """The zero-guarded ratio every derived rate in the repo uses."""
    return numerator / denominator if denominator else 0.0


#: Derived core metrics: name -> (numerator field, denominator field, desc).
#: :class:`~repro.pipeline.stats.CoreStats` properties and the experiment /
#: campaign render paths all evaluate these same definitions.
CORE_FORMULAS: Dict[str, Tuple[str, str, str]] = {
    "ipc": ("committed", "cycles", "committed instructions per cycle"),
    "mispredict_rate": ("branch_mispredicts", "branches",
                        "mispredicted fraction of resolved branches"),
    "restricted_fraction": ("restricted_committed", "committed",
                            "fraction of committed instructions the defense "
                            "restricted (Fig. 8)"),
}

#: Derived hierarchy metrics, same shape as :data:`CORE_FORMULAS`.
HIERARCHY_FORMULAS: Dict[str, Tuple[str, str, str]] = {
    "l1_hit_rate": ("l1_hits", "loads", "loads served by the L1"),
    "lfb_hit_rate": ("lfb_hits", "loads", "loads served by the LFB"),
    "tag_mismatch_rate": ("tag_mismatches", "tag_checks",
                          "tag checks that found a key/lock mismatch"),
}


class Stat:
    """Base class: a named, documented, resettable value."""

    def __init__(self, name: str, desc: str = ""):
        self.name = name
        self.desc = desc

    @property
    def value(self):
        raise NotImplementedError

    def reset(self) -> None:  # pragma: no cover - overridden
        pass

    def dump(self):
        """The JSON-serializable representation of this stat."""
        return self.value


class Scalar(Stat):
    """A registry-owned counter."""

    def __init__(self, name: str, desc: str = "", initial: float = 0):
        super().__init__(name, desc)
        self._value = initial

    @property
    def value(self):
        return self._value

    @value.setter
    def value(self, new) -> None:
        self._value = new

    def inc(self, delta: float = 1) -> None:
        self._value += delta

    def reset(self) -> None:
        self._value = 0


class BoundScalar(Stat):
    """A view over a counter that lives on another object.

    The owning object keeps its plain attribute (so hot-path increments stay
    a single integer add); the registry reads it through ``getter`` at dump
    time and zeroes it through ``setter`` on reset.
    """

    def __init__(self, name: str, getter: Callable[[], float],
                 setter: Optional[Callable[[float], None]] = None,
                 desc: str = ""):
        super().__init__(name, desc)
        self._getter = getter
        self._setter = setter

    @property
    def value(self):
        return self._getter()

    def reset(self) -> None:
        if self._setter is not None:
            self._setter(0)


class Formula(Stat):
    """A derived metric computed from other stats at dump time."""

    def __init__(self, name: str, fn: Callable[[], float], desc: str = ""):
        super().__init__(name, desc)
        self._fn = fn

    @property
    def value(self):
        return self._fn()


class Distribution(Stat):
    """A sampled value with count/min/max/mean/stdev and a bucket histogram.

    ``bucket_width`` fixes linear buckets (right choice for occupancies,
    where the range is a known capacity); ``log2_buckets=True`` switches to
    power-of-two buckets (right choice for latencies, whose tail is long).
    """

    def __init__(self, name: str, desc: str = "", bucket_width: int = 1,
                 log2_buckets: bool = False):
        super().__init__(name, desc)
        if bucket_width <= 0:
            raise ValueError("bucket_width must be positive")
        self.bucket_width = bucket_width
        self.log2_buckets = log2_buckets
        self.count = 0
        self.total = 0.0
        self.sum_sq = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self.buckets: Dict[int, int] = {}

    def _bucket_of(self, value: float) -> int:
        if self.log2_buckets:
            return 0 if value < 1 else int(value).bit_length() - 1
        return int(value) // self.bucket_width

    def bucket_bounds(self, bucket: int) -> Tuple[int, int]:
        """Inclusive-lo/exclusive-hi value range of ``bucket``."""
        if self.log2_buckets:
            lo = 0 if bucket == 0 else 1 << bucket
            return lo, 1 << (bucket + 1)
        return bucket * self.bucket_width, (bucket + 1) * self.bucket_width

    def sample(self, value: float, count: int = 1) -> None:
        self.count += count
        self.total += value * count
        self.sum_sq += value * value * count
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)
        bucket = self._bucket_of(value)
        self.buckets[bucket] = self.buckets.get(bucket, 0) + count

    @property
    def mean(self) -> float:
        return ratio(self.total, self.count)

    @property
    def stdev(self) -> float:
        if self.count < 2:
            return 0.0
        variance = self.sum_sq / self.count - self.mean ** 2
        return math.sqrt(max(variance, 0.0))

    @property
    def value(self):
        return self.mean

    def reset(self) -> None:
        self.count = 0
        self.total = 0.0
        self.sum_sq = 0.0
        self.min = None
        self.max = None
        self.buckets = {}

    def percentile(self, q: float) -> float:
        """Fixed-bucket percentile estimate (``q`` in [0, 1]).

        Walks the histogram to the bucket holding the ``q``-quantile
        sample and interpolates linearly inside it — the standard
        fixed-bucket estimator.  The answer is clamped to the observed
        min/max so tiny histograms never report impossible values.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be in [0, 1]")
        if self.count == 0 or self.min is None or self.max is None:
            return 0.0
        target = q * self.count
        cumulative = 0
        for bucket, count in sorted(self.buckets.items()):
            cumulative += count
            if cumulative >= target:
                lo, hi = self.bucket_bounds(bucket)
                within = 1.0 - (cumulative - target) / count
                estimate = lo + (hi - lo) * within
                return min(max(estimate, self.min), self.max)
        return self.max

    def dump(self) -> dict:
        return {
            "count": self.count,
            "mean": self.mean,
            "stdev": self.stdev,
            "min": self.min,
            "max": self.max,
            "buckets": {str(k): v for k, v in sorted(self.buckets.items())},
            "bucket_width": self.bucket_width,
            "log2_buckets": self.log2_buckets,
        }

    def state_dict(self) -> dict:
        """Lossless snapshot (unlike :meth:`dump`, which derives mean/stdev
        and drops the running sums a resumed run needs)."""
        return {
            "count": self.count,
            "total": self.total,
            "sum_sq": self.sum_sq,
            "min": self.min,
            "max": self.max,
            "buckets": [[k, v] for k, v in sorted(self.buckets.items())],
        }

    def load_state_dict(self, state: dict) -> None:
        self.count = state["count"]
        self.total = state["total"]
        self.sum_sq = state["sum_sq"]
        self.min = state["min"]
        self.max = state["max"]
        self.buckets = {int(k): v for k, v in state["buckets"]}


#: Percentiles every latency surface reports (Figure-style p50/p95/p99).
LATENCY_PERCENTILES = (0.50, 0.95, 0.99)


class LatencyHistogram(Distribution):
    """A latency distribution in milliseconds with p50/p95/p99 estimation.

    Log2 buckets by default — latency tails are long — and the dump adds
    the fixed-percentile estimates the service metrics and the benchmark
    snapshots serve.  ``observe`` is :meth:`Distribution.sample` under the
    name the metrics world expects.
    """

    def __init__(self, name: str, desc: str = "", **kwargs):
        kwargs.setdefault("log2_buckets", True)
        super().__init__(name, desc, **kwargs)

    def observe(self, latency_ms: float) -> None:
        self.sample(max(0.0, latency_ms))

    @property
    def p50(self) -> float:
        return self.percentile(0.50)

    @property
    def p95(self) -> float:
        return self.percentile(0.95)

    @property
    def p99(self) -> float:
        return self.percentile(0.99)

    def dump(self) -> dict:
        record = super().dump()
        for q in LATENCY_PERCENTILES:
            record[f"p{int(q * 100)}"] = self.percentile(q)
        return record


class Scope:
    """A dotted-prefix view of a registry: ``scope.scalar("x")`` registers
    ``prefix.x``.  Scopes nest (``scope.scope("commit")``)."""

    def __init__(self, registry: "StatsRegistry", prefix: str):
        self.registry = registry
        self.prefix = prefix

    def _full(self, name: str) -> str:
        return f"{self.prefix}.{name}" if self.prefix else name

    def scope(self, name: str) -> "Scope":
        return Scope(self.registry, self._full(name))

    def add(self, name: str, stat: Stat) -> Stat:
        return self.registry.add(self._full(name), stat)

    def scalar(self, name: str, desc: str = "") -> Scalar:
        return self.add(name, Scalar(name, desc))

    def bind(self, name: str, getter, setter=None, desc: str = "") -> BoundScalar:
        return self.add(name, BoundScalar(name, getter, setter, desc))

    def distribution(self, name: str, desc: str = "", **kwargs) -> Distribution:
        return self.add(name, Distribution(name, desc, **kwargs))

    def latency(self, name: str, desc: str = "", **kwargs) -> LatencyHistogram:
        return self.add(name, LatencyHistogram(name, desc, **kwargs))

    def formula(self, name: str, fn, desc: str = "") -> Formula:
        return self.add(name, Formula(name, fn, desc))


class StatsRegistry:
    """A flat, insertion-ordered map of dotted names to stats."""

    def __init__(self):
        self._stats: Dict[str, Stat] = {}

    # -- registration --------------------------------------------------------

    def add(self, full_name: str, stat: Stat) -> Stat:
        if full_name in self._stats:
            raise ValueError(f"stat {full_name!r} already registered")
        self._stats[full_name] = stat
        return stat

    def scope(self, prefix: str) -> Scope:
        return Scope(self, prefix)

    def merge(self, other: "StatsRegistry", prefix: str = "") -> None:
        """Graft every stat of ``other`` under ``prefix``."""
        for name, stat in other.items():
            self.add(f"{prefix}.{name}" if prefix else name, stat)

    # -- lookup --------------------------------------------------------------

    def __contains__(self, name: str) -> bool:
        return name in self._stats

    def __len__(self) -> int:
        return len(self._stats)

    def get(self, name: str) -> Stat:
        return self._stats[name]

    def items(self) -> Iterable[Tuple[str, Stat]]:
        return self._stats.items()

    # -- dump / reset --------------------------------------------------------

    def dump(self) -> dict:
        """Nested dict keyed by the dotted-name segments."""
        tree: dict = {}
        for name, stat in self._stats.items():
            node = tree
            parts = name.split(".")
            for part in parts[:-1]:
                node = node.setdefault(part, {})
            node[parts[-1]] = stat.dump()
        return tree

    def reset(self) -> None:
        for stat in self._stats.values():
            stat.reset()

    def render(self, title: str = "") -> str:
        """A flat gem5 ``stats.txt``-style table."""
        lines: List[str] = []
        if title:
            lines.append(f"---------- {title} ----------")
        width = max((len(name) for name in self._stats), default=0)
        for name, stat in self._stats.items():
            value = stat.value
            if isinstance(value, float):
                text = f"{value:14.6f}"
            elif value is None:
                text = f"{'n/a':>14s}"
            else:
                text = f"{value:14d}"
            comment = f"  # {stat.desc}" if stat.desc else ""
            lines.append(f"{name:<{width}s} {text}{comment}")
            if isinstance(stat, Distribution) and stat.count:
                lines.append(
                    f"{name + '::count':<{width}s} {stat.count:14d}")
                lines.append(
                    f"{name + '::minmax':<{width}s} "
                    f"{f'[{stat.min:g}, {stat.max:g}]':>14s}")
        return "\n".join(lines)


# ----------------------------------------------------------------------
# bindings over the existing flat stats dataclasses
# ----------------------------------------------------------------------

def bind_dataclass(scope: Scope, obj) -> None:
    """Register every field of a stats dataclass as a :class:`BoundScalar`.

    Uses default-argument binding so each closure captures its own field
    name; reset writes zero back through the same attribute.
    """
    for field in dataclass_fields(obj):
        scope.bind(
            field.name,
            getter=lambda o=obj, n=field.name: getattr(o, n),
            setter=lambda v, o=obj, n=field.name: setattr(o, n, v))


def _add_ratio_formulas(scope: Scope, obj,
                        formulas: Dict[str, Tuple[str, str, str]]) -> None:
    for name, (num, den, desc) in formulas.items():
        scope.formula(
            name,
            lambda o=obj, n=num, d=den: ratio(getattr(o, n), getattr(o, d)),
            desc)


def core_registry(stats, scope_name: str = "core") -> StatsRegistry:
    """Registry view over one :class:`~repro.pipeline.stats.CoreStats`."""
    registry = StatsRegistry()
    scope = registry.scope(scope_name)
    bind_dataclass(scope, stats)
    _add_ratio_formulas(scope, stats, CORE_FORMULAS)
    return registry


def hierarchy_registry(stats, scope_name: str = "mem") -> StatsRegistry:
    """Registry view over one :class:`~repro.memory.hierarchy.HierarchyStats`."""
    registry = StatsRegistry()
    scope = registry.scope(scope_name)
    bind_dataclass(scope, stats)
    _add_ratio_formulas(scope, stats, HIERARCHY_FORMULAS)
    return registry


def system_registry(core_stats=None, hierarchy_stats=None, occupancy=None,
                    per_core=(), checkpoint=None) -> StatsRegistry:
    """One registry over a whole simulated system.

    ``core_stats`` registers under ``core``; ``per_core`` (a sequence of
    CoreStats) registers under ``core0`` / ``core1`` / …; the hierarchy under
    ``mem``; an :class:`~repro.telemetry.occupancy.OccupancyProfiler` under
    ``occupancy``; a :class:`~repro.checkpoint.stats.CheckpointStats` (any
    stats dataclass) under ``checkpoint``.
    """
    registry = StatsRegistry()
    if core_stats is not None:
        registry.merge(core_registry(core_stats))
    for core_id, stats in enumerate(per_core):
        registry.merge(core_registry(stats, scope_name=f"core{core_id}"))
    if hierarchy_stats is not None:
        registry.merge(hierarchy_registry(hierarchy_stats))
    if occupancy is not None:
        registry.merge(occupancy.registry())
    if checkpoint is not None:
        bind_dataclass(registry.scope("checkpoint"), checkpoint)
    return registry
