"""ASCII rendering of pipeline traces and stats dumps.

``python -m repro.telemetry <trace>`` feeds a parsed trace (either format,
see :mod:`repro.telemetry.trace`) through :func:`render_timeline` — a
Konata-style lane per instruction — and :func:`render_trace_summary`, a
latency/fate roll-up computed from the records themselves.

Timeline glyphs::

    F fetch   D dispatch   I issue   E complete   R retire   X squash
    t tag check issued     ! response withheld    r restricted   L lifted
    . in flight between stages

When the traced window is wider than the terminal, cycles are scaled; the
header names the scale (``1 col = N cycles``) so distances stay readable.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.telemetry.registry import ratio

#: Stage -> (record key, glyph), in pipeline order.
_STAGES = (("fetch", "F"), ("dispatch", "D"), ("issue", "I"),
           ("complete", "E"), ("retire", "R"), ("squash", "X"))
#: Defense event kind -> overlay glyph.
_EVENT_GLYPHS = {"tagcheck": "t", "withheld": "!", "restrict": "r",
                 "lift": "L"}


def _record_span(record: dict) -> tuple:
    cycles = [record.get(key) for key, _ in _STAGES]
    cycles = [c for c in cycles if isinstance(c, int) and c >= 0]
    return (min(cycles), max(cycles)) if cycles else (None, None)


def render_timeline(records: Sequence[dict], width: int = 72,
                    start: Optional[int] = None,
                    end: Optional[int] = None,
                    limit: Optional[int] = None) -> str:
    """Render one lane per instruction across a (possibly scaled) window."""
    records = [r for r in records if _record_span(r)[0] is not None]
    if limit is not None:
        records = records[:limit]
    if not records:
        return "(empty trace)"
    lo = min(_record_span(r)[0] for r in records) if start is None else start
    hi = max(_record_span(r)[1] for r in records) if end is None else end
    span = max(hi - lo + 1, 1)
    scale = max(1, -(-span // width))  # ceil
    cols = -(-span // scale)

    def col(cycle: int) -> Optional[int]:
        if cycle is None or cycle < lo or cycle > hi:
            return None
        return (cycle - lo) // scale

    lines = [
        f"cycles {lo}..{hi}  (1 col = {scale} cycle{'s' if scale > 1 else ''})",
        f"{'seq':>6s} {'pc':>8s} {'disasm':24s} {'fate':7s} |{'cycle':-<{cols}s}|",
    ]
    for record in records:
        lane = [" "] * cols
        span_lo, span_hi = _record_span(record)
        for cycle in range(max(span_lo, lo), min(span_hi, hi) + 1):
            lane[col(cycle)] = "."
        for key, glyph in _STAGES:
            position = col(record.get(key)
                           if isinstance(record.get(key), int) else None)
            if position is not None:
                lane[position] = glyph
        for event in record.get("events", ()):
            cycle, kind = event[0], event[1]
            glyph = _EVENT_GLYPHS.get(kind)
            position = col(cycle)
            if glyph is not None and position is not None:
                lane[position] = glyph
        disasm = (record.get("disasm") or "")[:24]
        fate = record.get("fate", "?")
        lines.append(f"{record.get('seq', -1):>6d} {record.get('pc', 0):>#8x} "
                     f"{disasm:24s} {fate:7s} |{''.join(lane)}|")
    return "\n".join(lines)


def render_trace_summary(records: Sequence[dict],
                         summary: Optional[dict] = None) -> str:
    """Fate counts and stage-latency averages computed from the records."""
    committed = [r for r in records if r.get("fate") == "commit"]
    squashed = [r for r in records if r.get("fate") == "squash"]

    def mean_latency(from_key: str, to_key: str,
                     rows: Sequence[dict]) -> Optional[float]:
        deltas = [r[to_key] - r[from_key] for r in rows
                  if isinstance(r.get(from_key), int) and r.get(from_key, -1) >= 0
                  and isinstance(r.get(to_key), int) and r.get(to_key, -1) >= 0]
        return ratio(sum(deltas), len(deltas)) if deltas else None

    lines = ["trace summary",
             "-------------",
             f"instructions traced : {len(records)}",
             f"  committed         : {len(committed)}",
             f"  squashed          : {len(squashed)}"]
    if summary is not None:
        lines.append(f"  (writer counters  : committed={summary.get('committed')} "
                     f"squashed={summary.get('squashed')})")
    for label, pair in (("fetch -> dispatch", ("fetch", "dispatch")),
                        ("dispatch -> issue", ("dispatch", "issue")),
                        ("issue -> complete", ("issue", "complete")),
                        ("fetch -> retire", ("fetch", "retire"))):
        mean = mean_latency(pair[0], pair[1], committed)
        if mean is not None:
            lines.append(f"mean {label:18s}: {mean:8.2f} cycles")
    events: Dict[str, int] = {}
    for record in records:
        for event in record.get("events", ()):
            events[event[1]] = events.get(event[1], 0) + 1
    if events:
        lines.append("defense events      : " + ", ".join(
            f"{kind}={count}" for kind, count in sorted(events.items())))
    return "\n".join(lines)


def render_stats_dump(dump: dict, indent: int = 0) -> str:
    """Render a nested registry dump (stats.json) as an indented table."""
    lines: List[str] = []
    pad = "  " * indent
    for key, value in dump.items():
        if isinstance(value, dict) and "buckets" in value and "count" in value:
            lines.append(f"{pad}{key:24s} count={value['count']:<8d} "
                         f"mean={value['mean']:<10.3f} "
                         f"min={value['min']} max={value['max']}")
            buckets = value.get("buckets") or {}
            if buckets:
                total = sum(buckets.values()) or 1
                for bucket, count in buckets.items():
                    bar = "#" * max(1, round(40 * count / total))
                    lines.append(f"{pad}  [{bucket:>4s}] {count:>8d} {bar}")
        elif isinstance(value, dict):
            lines.append(f"{pad}{key}:")
            lines.append(render_stats_dump(value, indent + 1))
        elif isinstance(value, float):
            lines.append(f"{pad}{key:24s} {value:14.6f}")
        else:
            lines.append(f"{pad}{key:24s} {value!r:>14s}")
    return "\n".join(lines)
