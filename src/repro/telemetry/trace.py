"""Cycle-accurate pipeline event tracing (gem5 O3PipeView + JSONL).

The core and LSQ call into an attached :class:`TraceSink` at each lifecycle
point of a :class:`~repro.pipeline.dyninstr.DynInstr` — fetch, retirement,
squash — and at each defense event (tag check issued, tag outcome, withheld
response, restriction, restriction lift).  Every call site is guarded by
``if self.trace is not None``, so a core with no sink attached pays one
attribute test per event site and nothing else.

:class:`PipelineTracer` is the standard sink.  It buffers per-instruction
defense events and, once an instruction's fate is known (commit or squash),
emits one record to each configured writer:

- **O3PipeView** (``trace.o3pipeview``): the gem5 line format Konata and
  gem5's own pipeline viewer parse.  Our model has no separate decode/rename
  stages, so those lines carry the dispatch cycle; ticks are cycles scaled
  by :data:`TICKS_PER_CYCLE` (gem5's convention of 500 ps per cycle).
- **JSONL** (``trace.jsonl``): one self-describing object per instruction
  with all timestamps plus the defense-event list — the machine-readable
  form the ``python -m repro.telemetry`` renderer and tests consume.

The tracer also keeps a bounded ring buffer of recent events
(:meth:`PipelineTracer.tail`) that resilience snapshots attach to
Deadlock/Livelock/InvariantViolation reports, so a wedged run shows what the
pipeline was doing when it stopped.
"""

from __future__ import annotations

import io
import json
from collections import deque
from typing import Dict, List, Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.pipeline.dyninstr import DynInstr

#: O3PipeView ticks per simulated cycle (gem5 uses picosecond ticks with a
#: 2 GHz clock; Konata infers the cycle time from the tick GCD).
TICKS_PER_CYCLE = 500

#: Trace schema version stamped on every JSONL record.
TRACE_SCHEMA_VERSION = 1

#: Defense event kinds a sink may receive.
DEFENSE_EVENTS = ("tagcheck", "tag-outcome", "withheld", "restrict", "lift")


class TraceSink:
    """Interface for pipeline trace consumers (all hooks are optional)."""

    def on_fetch(self, dyn: "DynInstr", cycle: int) -> None:
        """``dyn`` was fetched at ``cycle``."""

    def on_defense_event(self, dyn: "DynInstr", cycle: int, kind: str,
                         **details) -> None:
        """A defense intervention touched ``dyn`` (see DEFENSE_EVENTS)."""

    def on_retire(self, dyn: "DynInstr", cycle: int) -> None:
        """``dyn`` committed at ``cycle``; its timestamps are final."""

    def on_squash(self, dyn: "DynInstr", cycle: int, reason: str = "") -> None:
        """``dyn`` was squashed at ``cycle``."""

    def close(self) -> None:
        """Flush and release any output resources."""


def _stage_ticks(dyn) -> Dict[str, int]:
    """The per-stage cycle numbers of one finished instruction.

    Stages the instruction never reached report ``-1``.  Instructions that
    complete at dispatch (branches resolved at fetch, NOPs) report their
    dispatch cycle as issue/complete so the record stays monotone.
    """
    issue = dyn.issue_cycle
    complete = dyn.complete_cycle
    if issue < 0 and complete >= 0:
        issue = max(dyn.dispatch_cycle, 0) or complete
    return {
        "fetch": dyn.fetch_cycle,
        "dispatch": dyn.dispatch_cycle,
        "issue": issue,
        "complete": complete,
    }


class PipelineTracer(TraceSink):
    """Buffers per-instruction events and writes O3PipeView + JSONL records.

    Either output may be ``None``; paths or open text handles are accepted.
    ``tail_limit`` bounds the diagnostic ring buffer.
    """

    def __init__(self, o3_path=None, jsonl_path=None, core_id: int = 0,
                 tail_limit: int = 64):
        self.core_id = core_id
        self._o3 = self._open(o3_path)
        self._jsonl = self._open(jsonl_path)
        self._events: Dict[int, List[list]] = {}
        self._tail: deque = deque(maxlen=tail_limit)
        #: Reconciliation counters — must match CoreStats at end of run.
        self.committed = 0
        self.squashed = 0
        self.records = 0

    @staticmethod
    def _open(target):
        if target is None:
            return None
        if isinstance(target, (str, bytes)) or hasattr(target, "__fspath__"):
            return open(target, "w", encoding="utf-8", newline="\n")
        return target  # an already-open text handle (e.g. StringIO)

    # -- sink hooks ----------------------------------------------------------

    def on_fetch(self, dyn, cycle: int) -> None:
        self._tail.append((cycle, "fetch", dyn.seq, dyn.pc))

    def on_defense_event(self, dyn, cycle: int, kind: str, **details) -> None:
        event = [cycle, kind, details]
        self._events.setdefault(dyn.seq, []).append(event)
        self._tail.append((cycle, kind, dyn.seq, dyn.pc))

    def on_retire(self, dyn, cycle: int) -> None:
        self.committed += 1
        self._tail.append((cycle, "retire", dyn.seq, dyn.pc))
        self._emit(dyn, fate="commit", end_cycle=cycle)

    def on_squash(self, dyn, cycle: int, reason: str = "") -> None:
        self.squashed += 1
        self._tail.append((cycle, "squash", dyn.seq, dyn.pc))
        self._emit(dyn, fate="squash", end_cycle=cycle, reason=reason)

    # -- record emission -----------------------------------------------------

    def _emit(self, dyn, fate: str, end_cycle: int, reason: str = "") -> None:
        self.records += 1
        events = self._events.pop(dyn.seq, [])
        stages = _stage_ticks(dyn)
        if self._jsonl is not None:
            record = {
                "v": TRACE_SCHEMA_VERSION,
                "kind": "instr",
                "core": self.core_id,
                "seq": dyn.seq,
                "pc": dyn.pc,
                "disasm": dyn.static.render(),
                "fate": fate,
                **stages,
            }
            if fate == "commit":
                record["retire"] = end_cycle
            else:
                record["squash"] = end_cycle
                record["reason"] = reason
            if events:
                record["events"] = events
            self._jsonl.write(json.dumps(record, separators=(",", ":")))
            self._jsonl.write("\n")
        if self._o3 is not None:
            self._write_o3(dyn, stages, fate, end_cycle)

    def _write_o3(self, dyn, stages: Dict[str, int], fate: str,
                  end_cycle: int) -> None:
        def tick(cycle: int) -> int:
            return cycle * TICKS_PER_CYCLE if cycle >= 0 else 0

        out = self._o3
        out.write(f"O3PipeView:fetch:{tick(stages['fetch'])}:"
                  f"0x{dyn.pc:08x}:0:{dyn.seq}:{dyn.static.render()}\n")
        out.write(f"O3PipeView:decode:{tick(stages['dispatch'])}\n")
        out.write(f"O3PipeView:rename:{tick(stages['dispatch'])}\n")
        out.write(f"O3PipeView:dispatch:{tick(stages['dispatch'])}\n")
        out.write(f"O3PipeView:issue:{tick(stages['issue'])}\n")
        out.write(f"O3PipeView:complete:{tick(stages['complete'])}\n")
        if fate == "commit":
            store_tick = tick(end_cycle) if dyn.is_store else 0
            out.write(f"O3PipeView:retire:{tick(end_cycle)}:"
                      f"store:{store_tick}\n")
        else:
            # Tick 0 is the O3PipeView convention for a squashed entry.
            out.write("O3PipeView:retire:0:store:0\n")

    # -- diagnostics ---------------------------------------------------------

    def tail(self, limit: Optional[int] = None) -> List[tuple]:
        """The most recent trace events, oldest first — attached to
        resilience snapshots when tracing is active."""
        events = list(self._tail)
        if limit is not None:
            events = events[-limit:]
        return events

    def close(self) -> None:
        summary = {
            "v": TRACE_SCHEMA_VERSION, "kind": "summary",
            "core": self.core_id, "committed": self.committed,
            "squashed": self.squashed, "records": self.records,
        }
        if self._jsonl is not None:
            self._jsonl.write(json.dumps(summary, separators=(",", ":")))
            self._jsonl.write("\n")
            if not isinstance(self._jsonl, io.StringIO):
                self._jsonl.close()
            self._jsonl = None
        if self._o3 is not None:
            if not isinstance(self._o3, io.StringIO):
                self._o3.close()
            self._o3 = None


# ----------------------------------------------------------------------
# trace parsing (the renderer's input side)
# ----------------------------------------------------------------------

def parse_jsonl(lines) -> tuple:
    """Parse a JSONL trace into ``(instr_records, summary_or_None)``."""
    records, summary = [], None
    for line in lines:
        line = line.strip()
        if not line:
            continue
        obj = json.loads(line)
        if obj.get("kind") == "summary":
            summary = obj
        elif obj.get("kind") == "instr":
            records.append(obj)
    return records, summary


def parse_o3pipeview(lines) -> tuple:
    """Parse O3PipeView lines back into JSONL-shaped instr records."""
    records: List[dict] = []
    current: Optional[dict] = None

    def cycle(tick_text: str) -> int:
        tick = int(tick_text)
        return tick // TICKS_PER_CYCLE if tick else -1

    for line in lines:
        line = line.strip()
        if not line.startswith("O3PipeView:"):
            continue
        parts = line.split(":")
        stage = parts[1]
        if stage == "fetch":
            current = {
                "kind": "instr",
                "fetch": cycle(parts[2]),
                "pc": int(parts[3], 16),
                "seq": int(parts[5]),
                "disasm": ":".join(parts[6:]),
            }
        elif current is None:
            continue
        elif stage in ("decode", "rename"):
            pass  # synthesized from dispatch in our model
        elif stage in ("dispatch", "issue", "complete"):
            current[stage] = cycle(parts[2])
        elif stage == "retire":
            tick = int(parts[2])
            if tick:
                current["fate"] = "commit"
                current["retire"] = tick // TICKS_PER_CYCLE
            else:
                current["fate"] = "squash"
                current["squash"] = None
            records.append(current)
            current = None
    return records, None


def load_trace(path: str) -> tuple:
    """Parse a trace file of either format; returns (records, summary)."""
    with open(path, encoding="utf-8") as handle:
        first = handle.readline()
        handle.seek(0)
        if first.startswith("O3PipeView:"):
            return parse_o3pipeview(handle)
        return parse_jsonl(handle)
