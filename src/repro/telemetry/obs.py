"""The unified observability plane: trace IDs, spans, and the flight recorder.

Three cooperating pieces, shared by the spec-lint service, the campaign
scheduler, and their workers:

- **Request-scoped span tracing.**  A 16-hex *trace ID* is minted at
  service admission (and once per campaign cell); every protocol envelope,
  worker payload, and log record downstream carries it.  Work is recorded
  as typed :class:`Span` records — ``queue-wait``, ``pool-dispatch``,
  ``static-lint``, ``simulator-confirm``, ``cache-lookup``,
  ``checkpoint-restore`` — with parent/child links, appended as JSONL by a
  :class:`SpanRecorder` so one request's full latency breakdown is
  reconstructable offline (``python -m repro.telemetry --spans``).
- **Flight recorder.**  A bounded, always-on ring buffer of the last N
  spans/events per process (:class:`FlightRecorder`).  It costs a deque
  append per event, so it is never disabled; on shutdown it is dumped next
  to ``shutdown-report.json``, and typed errors get the tail attached so a
  post-mortem carries recent history without verbose tracing enabled.
- **Offline tooling.**  :func:`load_spans` / :func:`render_span_tree`
  rebuild and draw the span forest; :func:`collapsed_stacks` converts a
  cProfile capture into flamegraph-compatible collapsed-stack lines.

Span records are plain dicts on the wire::

    {"kind": "span", "trace": "ab12...", "span": "0f3c...", "parent": "",
     "name": "static-lint", "t0_ms": 12.5, "dur_ms": 3.1,
     "status": "ok", "attrs": {"pool": "static"}}

Timestamps are milliseconds on the recorder's own monotonic clock —
within one process spans order and nest exactly; across processes only
durations are compared (worker-side phases are re-based by the parent).
"""

from __future__ import annotations

import itertools
import json
import os
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Dict, IO, Iterable, List, Optional, Tuple

#: Span names used across the repo (free-form names are also accepted;
#: these are the typed vocabulary the renderer and tests key on).
SPAN_QUEUE_WAIT = "queue-wait"
SPAN_POOL_DISPATCH = "pool-dispatch"
SPAN_STATIC_LINT = "static-lint"
SPAN_CONFIRM = "simulator-confirm"
SPAN_CACHE_LOOKUP = "cache-lookup"
SPAN_CHECKPOINT_RESTORE = "checkpoint-restore"

_ID_BYTES = 8


def new_trace_id() -> str:
    """A fresh 16-hex trace (or span) identifier."""
    return os.urandom(_ID_BYTES).hex()


def is_trace_id(value: str) -> bool:
    """Loose validation for client-supplied trace IDs: short lowercase
    hex/dash strings, so IDs stay grep-able and log-safe."""
    return (isinstance(value, str) and 1 <= len(value) <= 64
            and all(c in "0123456789abcdef-" for c in value))


@dataclass
class Span:
    """One completed unit of traced work."""

    trace_id: str
    span_id: str
    parent_id: str
    name: str
    t0_ms: float
    dur_ms: float
    status: str = "ok"
    attrs: Dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> dict:
        record = {"kind": "span", "trace": self.trace_id,
                  "span": self.span_id, "parent": self.parent_id,
                  "name": self.name, "t0_ms": round(self.t0_ms, 3),
                  "dur_ms": round(self.dur_ms, 3), "status": self.status}
        if self.attrs:
            record["attrs"] = self.attrs
        return record

    @classmethod
    def from_dict(cls, record: dict) -> "Span":
        return cls(trace_id=record.get("trace", ""),
                   span_id=record.get("span", ""),
                   parent_id=record.get("parent", ""),
                   name=record.get("name", ""),
                   t0_ms=float(record.get("t0_ms", 0.0)),
                   dur_ms=float(record.get("dur_ms", 0.0)),
                   status=record.get("status", "ok"),
                   attrs=record.get("attrs", {}) or {})


class FlightRecorder:
    """Bounded ring buffer of recent events — the always-on black box.

    ``record`` costs one dict build and a deque append, so the recorder
    stays enabled in production paths.  Events older than ``capacity``
    fall off the front (``dropped`` counts them); :meth:`tail` returns the
    newest ``n`` for attaching to a typed error, :meth:`dump` the whole
    buffer for the shutdown report.
    """

    def __init__(self, capacity: int = 256,
                 clock: Callable[[], float] = time.monotonic):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._clock = clock
        self._epoch = clock()
        self._events: deque = deque(maxlen=capacity)
        self._seq = itertools.count()
        self.recorded = 0
        self._lock = threading.Lock()

    def record(self, event: str, **attrs) -> dict:
        """Append one event (``trace=...`` attrs ride along verbatim)."""
        entry = {"seq": next(self._seq), "event": event,
                 "t_ms": round((self._clock() - self._epoch) * 1000.0, 3)}
        entry.update(attrs)
        with self._lock:
            self._events.append(entry)
            self.recorded += 1
        return entry

    @property
    def dropped(self) -> int:
        return max(0, self.recorded - len(self._events))

    def tail(self, n: int = 16) -> List[dict]:
        with self._lock:
            events = list(self._events)
        return events[-n:]

    def dump(self) -> dict:
        with self._lock:
            events = list(self._events)
        return {"capacity": self.capacity, "recorded": self.recorded,
                "dropped": self.dropped, "events": events}


class _SpanHandle:
    """Context manager backing :meth:`SpanRecorder.span`."""

    def __init__(self, recorder: "SpanRecorder", trace_id: str, name: str,
                 parent_id: str, attrs: Dict[str, object]):
        self._recorder = recorder
        self.trace_id = trace_id
        self.span_id = new_trace_id()
        self.parent_id = parent_id
        self.name = name
        self.attrs = attrs
        self.status = "ok"
        self._start = recorder.now()

    def annotate(self, **attrs) -> None:
        self.attrs.update(attrs)

    def __enter__(self) -> "_SpanHandle":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None:
            self.status = "error"
            self.attrs.setdefault("error", str(exc))
        self._recorder.emit(Span(
            trace_id=self.trace_id, span_id=self.span_id,
            parent_id=self.parent_id, name=self.name,
            t0_ms=self._start, dur_ms=self._recorder.now() - self._start,
            status=self.status, attrs=self.attrs))


class SpanRecorder:
    """Appends completed spans as JSONL and mirrors them into the flight
    recorder.

    ``path=None`` keeps spans in memory only (``self.spans``) — the test
    and selftest mode.  Writes are line-buffered appends behind a lock;
    one process, one recorder, one file.
    """

    def __init__(self, path: Optional[str] = None,
                 flight: Optional[FlightRecorder] = None,
                 clock: Callable[[], float] = time.monotonic):
        self.path = path
        self.flight = flight
        self._clock = clock
        self._epoch = clock()
        self.spans: List[Span] = []
        self.emitted = 0
        self._lock = threading.Lock()
        self._handle: Optional[IO[str]] = None
        if path is not None:
            os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
            self._handle = open(path, "a", encoding="utf-8", buffering=1)

    def now(self) -> float:
        """Milliseconds since this recorder's epoch."""
        return (self._clock() - self._epoch) * 1000.0

    def at(self, clock_s: float) -> float:
        """A timestamp already taken on this recorder's clock (seconds),
        re-based to recorder milliseconds — for post-hoc spans measured
        with ``time.monotonic()`` before the span is recorded."""
        return (clock_s - self._epoch) * 1000.0

    def span(self, trace_id: str, name: str, parent_id: str = "",
             **attrs) -> _SpanHandle:
        """Context manager measuring one span as wall time inside it."""
        return _SpanHandle(self, trace_id, name, parent_id, dict(attrs))

    def record(self, trace_id: str, name: str, *, t0_ms: float,
               dur_ms: float, parent_id: str = "", status: str = "ok",
               **attrs) -> Span:
        """Record a span from already-measured timestamps (post-hoc —
        queue waits, worker-reported phases)."""
        span = Span(trace_id=trace_id, span_id=new_trace_id(),
                    parent_id=parent_id, name=name, t0_ms=t0_ms,
                    dur_ms=max(0.0, dur_ms), status=status, attrs=attrs)
        self.emit(span)
        return span

    def emit(self, span: Span) -> None:
        line = json.dumps(span.to_dict(), sort_keys=True,
                          separators=(",", ":"))
        with self._lock:
            self.emitted += 1
            if self._handle is not None:
                self._handle.write(line + "\n")
            else:
                self.spans.append(span)
        if self.flight is not None:
            self.flight.record("span", trace=span.trace_id, name=span.name,
                               dur_ms=round(span.dur_ms, 3),
                               status=span.status)

    def close(self) -> None:
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None


# ----------------------------------------------------------------------
# offline: load + render
# ----------------------------------------------------------------------

def parse_spans(lines: Iterable[str]) -> List[Span]:
    """Span records from JSONL lines; non-span/damaged lines are skipped
    (span logs are append-only and may end in a torn line)."""
    spans = []
    for line in lines:
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            continue
        if isinstance(record, dict) and record.get("kind") == "span":
            spans.append(Span.from_dict(record))
    return spans


def load_spans(path: str) -> List[Span]:
    with open(path, encoding="utf-8") as handle:
        return parse_spans(handle)


def span_forest(spans: List[Span]) -> Dict[str, List[Tuple[Span, List]]]:
    """trace_id -> list of (root span, children tree) for that trace.

    Children are ``(span, grandchildren)`` pairs ordered by start time;
    orphans (parent never recorded, e.g. rotated away) promote to roots.
    """
    by_trace: Dict[str, List[Span]] = {}
    for span in spans:
        by_trace.setdefault(span.trace_id, []).append(span)
    forest: Dict[str, List[Tuple[Span, List]]] = {}
    for trace_id, members in by_trace.items():
        ids = {span.span_id for span in members}
        children: Dict[str, List[Span]] = {}
        roots: List[Span] = []
        for span in members:
            if span.parent_id and span.parent_id in ids:
                children.setdefault(span.parent_id, []).append(span)
            else:
                roots.append(span)

        def tree(span: Span) -> Tuple[Span, List]:
            kids = sorted(children.get(span.span_id, ()),
                          key=lambda s: (s.t0_ms, s.name))
            return (span, [tree(kid) for kid in kids])

        forest[trace_id] = [tree(root) for root in
                            sorted(roots, key=lambda s: (s.t0_ms, s.name))]
    return forest


def render_span_tree(spans: List[Span],
                     trace_id: Optional[str] = None) -> str:
    """ASCII span tree, one block per trace — the offline latency
    breakdown of a request."""
    forest = span_forest(spans)
    if trace_id is not None:
        forest = {tid: trees for tid, trees in forest.items()
                  if tid == trace_id}
        if not forest:
            return f"(no spans for trace {trace_id})"
    lines: List[str] = []

    def draw(node: Tuple[Span, List], depth: int, origin: float) -> None:
        span, kids = node
        indent = "  " * depth
        mark = "" if span.status == "ok" else "  [" + span.status + "]"
        attrs = ""
        if span.attrs:
            parts = [f"{k}={v}" for k, v in sorted(span.attrs.items())]
            attrs = "  {" + ", ".join(parts) + "}"
        lines.append(f"{indent}{span.name:<24s} "
                     f"+{span.t0_ms - origin:9.2f}ms "
                     f"{span.dur_ms:9.2f}ms{mark}{attrs}")
        for kid in kids:
            draw(kid, depth + 1, origin)

    for tid in sorted(forest):
        trees = forest[tid]
        total = sum(root.dur_ms for root, _ in trees)
        lines.append(f"trace {tid}  ({len(trees)} root span(s), "
                     f"{total:.2f}ms)")
        origin = min((root.t0_ms for root, _ in trees), default=0.0)
        for tree in trees:
            draw(tree, 1, origin)
        lines.append("")
    return "\n".join(lines).rstrip()


# ----------------------------------------------------------------------
# flamegraph-compatible collapsed stacks from a cProfile capture
# ----------------------------------------------------------------------

def _frame(func: tuple) -> str:
    """pstats function triple -> a collapsed-stack frame label."""
    filename, lineno, name = func
    if filename in ("~", ""):
        return name.strip("<>")
    base = os.path.basename(filename)
    return f"{base}:{lineno}:{name}".replace(";", ",").replace(" ", "_")


def collapsed_stacks(stats: dict, min_us: int = 1) -> List[str]:
    """Collapsed-stack lines (``frame;frame;frame count``) from a
    ``pstats.Stats(...).stats`` mapping.

    cProfile records a call *graph*, not stack samples, so full stacks
    are reconstructed by walking each function's most-expensive caller
    chain (cycle-guarded).  Each function's *inline* time lands exactly
    once, as the leaf of its representative stack, so the flamegraph's
    total equals the profile's total inline time.  Counts are integer
    microseconds.
    """
    lines = []
    for func in sorted(stats, key=_frame):
        _, _, tt, _, callers = stats[func]
        micros = int(round(tt * 1_000_000))
        if micros < min_us:
            continue
        chain = [func]
        seen = {func}
        node = func
        while True:
            node_callers = stats.get(node, (0, 0, 0, 0, {}))[4]
            candidates = [(caller, timing[3])
                          for caller, timing in node_callers.items()
                          if caller not in seen]
            if not candidates:
                break
            node = max(candidates,
                       key=lambda item: (item[1], _frame(item[0])))[0]
            chain.append(node)
            seen.add(node)
        stack = ";".join(_frame(f) for f in reversed(chain))
        lines.append(f"{stack} {micros}")
    return lines


def write_collapsed(profiler, path: str, min_us: int = 1) -> int:
    """Dump a cProfile.Profile as collapsed stacks; returns line count."""
    import pstats

    stats = pstats.Stats(profiler).stats  # type: ignore[attr-defined]
    lines = collapsed_stacks(stats, min_us=min_us)
    with open(path, "w", encoding="utf-8") as handle:
        for line in lines:
            handle.write(line + "\n")
    return len(lines)
