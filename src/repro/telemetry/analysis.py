"""The ``analysis.modular.*`` stats scope for summary-based spec-lint.

Every modular analysis run books its summary-cache traffic and call-graph
shape here, in the same gem5-style registry convention as the ``core.*`` /
``service.*`` scopes — so a service or fuzz campaign can report exactly
how much re-linting the summary cache absorbed, not anecdotes.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.telemetry.registry import StatsRegistry, ratio


class ModularStats:
    """Typed handle over the ``analysis.modular.*`` scope of one registry."""

    def __init__(self, registry: Optional[StatsRegistry] = None):
        self.registry = registry if registry is not None else StatsRegistry()
        scope = self.registry.scope("analysis").scope("modular")

        self.runs = scope.scalar("runs", "modular analysis invocations")
        self.regions = scope.scalar(
            "regions", "regions visited across all runs")

        summary = scope.scope("summary")
        self.hits = summary.scalar(
            "hits", "region summaries served from the cache")
        self.misses = summary.scalar(
            "misses", "region summaries computed live")
        self.reanalyzed = summary.scalar(
            "reanalyzed", "regions re-analyzed (the cache-miss work)")
        summary.formula("hit_rate", lambda: ratio(
            self.hits.value, self.hits.value + self.misses.value),
            "summary hits / lookups")

        self.scc_size = scope.distribution(
            "scc_size", "call-graph SCC sizes per run (recursive groups "
                        "are the >1 buckets)")

    def book_run(self, hits: int, misses: int, reanalyzed: int,
                 regions: int, scc_sizes: Iterable[int]) -> None:
        """Book one finished modular run (called by the engine)."""
        self.runs.inc()
        self.regions.inc(regions)
        self.hits.inc(hits)
        self.misses.inc(misses)
        self.reanalyzed.inc(reanalyzed)
        for size in scc_sizes:
            self.scc_size.sample(size)
