"""Occupancy sampling and defense-latency distributions.

An :class:`OccupancyProfiler` attached to a core samples the occupancy of
every bounded pipeline/memory structure — ROB, IQ, LQ/SQ, the core's L1
MSHRs, the shared L2 MSHRs, and the LFB — into
:class:`~repro.telemetry.registry.Distribution` histograms, once every
``interval`` cycles from :meth:`~repro.pipeline.core.Core.tick`.

It also owns the two latency distributions the paper's Figure 8 analysis
rests on, fed by the core as the events happen:

- ``shadow_length`` — cycles from a branch's fetch to its resolution, i.e.
  how long the speculation shadow it opened stayed open;
- ``restriction_delay`` — cycles from a defense first restricting an
  instruction to the restriction lifting (the load completing or the
  instruction finally issuing): the *direct* cost of each intervention.

Everything is exposed through :meth:`registry`, so occupancy data dumps and
renders with the same machinery as the counter stats.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.telemetry.registry import Distribution, StatsRegistry

if TYPE_CHECKING:  # pragma: no cover
    from repro.pipeline.core import Core


class OccupancyProfiler:
    """Samples structure occupancy and defense latencies into histograms."""

    STRUCTURES = ("rob", "iq", "lq", "sq", "fetch_queue",
                  "mshr_l1", "mshr_l2", "lfb")

    def __init__(self, interval: int = 1):
        if interval <= 0:
            raise ValueError("sampling interval must be positive")
        self.interval = interval
        self.samples_taken = 0
        self.rob = Distribution("rob", "ROB occupancy", bucket_width=4)
        self.iq = Distribution("iq", "issue-queue occupancy", bucket_width=4)
        self.lq = Distribution("lq", "load-queue occupancy", bucket_width=2)
        self.sq = Distribution("sq", "store-queue occupancy", bucket_width=2)
        self.fetch_queue = Distribution(
            "fetch_queue", "fetch-queue occupancy", bucket_width=2)
        self.mshr_l1 = Distribution(
            "mshr_l1", "private L1 MSHR occupancy", bucket_width=1)
        self.mshr_l2 = Distribution(
            "mshr_l2", "shared L2 MSHR occupancy", bucket_width=2)
        self.lfb = Distribution(
            "lfb", "in-flight LFB fills", bucket_width=2)
        self.shadow_length = Distribution(
            "shadow_length",
            "cycles each branch's speculation shadow stayed open",
            log2_buckets=True)
        self.restriction_delay = Distribution(
            "restriction_delay",
            "cycles from defense restriction to lift (Fig. 8 observable)",
            log2_buckets=True)

    def attach(self, core: "Core") -> "OccupancyProfiler":
        core.occupancy = self
        return self

    # -- feeding -------------------------------------------------------------

    def sample(self, core: "Core") -> None:
        """Record one occupancy snapshot of every tracked structure."""
        self.samples_taken += 1
        self.rob.sample(len(core.rob))
        self.iq.sample(len(core.iq))
        self.lq.sample(len(core.lsq.lq))
        self.sq.sample(len(core.lsq.sq))
        self.fetch_queue.sample(len(core.fetch_queue))
        hierarchy = core.hierarchy
        self.mshr_l1.sample(len(hierarchy.l1_mshrs[core.core_id]))
        self.mshr_l2.sample(len(hierarchy.l2_mshrs))
        lfb = hierarchy.lfbs[core.core_id]
        self.lfb.sample(sum(1 for e in lfb.entries if not e.filled))

    def note_shadow(self, length: int) -> None:
        """A branch resolved ``length`` cycles after it was fetched."""
        self.shadow_length.sample(length)

    def note_restriction_delay(self, delay: int) -> None:
        """A defense restriction lifted ``delay`` cycles after it landed."""
        self.restriction_delay.sample(delay)

    # -- checkpointing -------------------------------------------------------

    def state_dict(self) -> dict:
        state = {"samples_taken": self.samples_taken}
        for name in self.STRUCTURES + ("shadow_length", "restriction_delay"):
            state[name] = getattr(self, name).state_dict()
        return state

    def load_state_dict(self, state: dict) -> None:
        self.samples_taken = state["samples_taken"]
        for name in self.STRUCTURES + ("shadow_length", "restriction_delay"):
            getattr(self, name).load_state_dict(state[name])

    # -- output --------------------------------------------------------------

    def registry(self, scope_name: str = "occupancy") -> StatsRegistry:
        registry = StatsRegistry()
        scope = registry.scope(scope_name)
        scope.bind("samples", lambda: self.samples_taken,
                   desc="occupancy snapshots taken")
        for name in self.STRUCTURES:
            scope.add(name, getattr(self, name))
        scope.add("shadow_length", self.shadow_length)
        scope.add("restriction_delay", self.restriction_delay)
        return registry

    def dump(self) -> dict:
        return self.registry().dump()
