"""The ``service.*`` stats scope for the spec-lint service.

Every counter the always-on front end books — admission decisions, served
tiers, cache traffic, worker supervision events, breaker trips — lives in
one :class:`~repro.telemetry.registry.StatsRegistry` under the ``service``
prefix, following the same gem5-style convention as the ``core.*`` /
``mem.*`` / ``checkpoint.*`` scopes.  The registry is dumped into the
shutdown report and served live by the protocol's ``stats`` op, so the
degradation behaviour of a running service is observable, not anecdotal.
"""

from __future__ import annotations

from repro.errors import SERVICE_ERROR_KINDS
from repro.telemetry.registry import StatsRegistry, ratio

#: Served-tier labels, best first (the degradation ladder's rungs).
TIER_FULL = "static+dynamic"
TIER_STATIC = "static"
TIER_CACHE = "cache"
TIERS = (TIER_FULL, TIER_STATIC, TIER_CACHE)


class ServiceStats:
    """Typed handle over the ``service.*`` scope of one registry."""

    def __init__(self, registry: StatsRegistry | None = None):
        self.registry = registry if registry is not None else StatsRegistry()
        scope = self.registry.scope("service")

        admission = scope.scope("admission")
        self.accepted = admission.scalar(
            "accepted", "requests admitted past backpressure")
        self.rejected = {
            kind: admission.scalar(f"rejected_{kind.replace('-', '_')}",
                                   f"requests rejected: {kind}")
            for kind in sorted(SERVICE_ERROR_KINDS)}
        admission.formula("shed_fraction", self._shed_fraction,
                          "rejected / (accepted + rejected)")

        tiers = scope.scope("tier")
        self.tier = {
            tier: tiers.scalar(tier.replace("+", "_"),
                               f"responses served at the {tier} tier")
            for tier in TIERS}
        tiers.formula("degraded_fraction", self._degraded_fraction,
                      "responses served below the requested tier")
        self.degraded = tiers.scalar(
            "degraded", "responses downgraded below the requested tier")

        cache = scope.scope("cache")
        self.cache_hits = cache.scalar("hits", "verdicts served from cache")
        self.cache_misses = cache.scalar("misses", "verdicts computed fresh")
        self.coalesced = cache.scalar(
            "coalesced", "requests folded onto an in-flight computation")
        cache.formula("hit_rate", lambda: ratio(
            self.cache_hits.value,
            self.cache_hits.value + self.cache_misses.value),
            "cache hits / lookups")

        workers = scope.scope("workers")
        self.worker_deaths = workers.scalar(
            "deaths", "worker processes that crashed, were killed, or "
                      "stalled")
        self.worker_restarts = workers.scalar(
            "restarts", "supervised restarts after a worker death")
        self.worker_reaped = workers.scalar(
            "reaped", "workers reaped for deadline/cancellation reasons")
        self.breaker_opens = workers.scalar(
            "breaker_opens", "circuit-breaker open transitions")
        self.quarantined_hashes = workers.scalar(
            "quarantined_hashes", "content hashes quarantined as poison")

        lifecycle = scope.scope("lifecycle")
        self.completed = lifecycle.scalar(
            "completed", "requests resolved with a verdict response")
        self.errored = lifecycle.scalar(
            "errored", "requests resolved with a typed error response")
        self.cancelled_at_drain = lifecycle.scalar(
            "cancelled_at_drain", "in-flight requests cut by drain timeout")

        latency = scope.scope("latency")
        self.request_ms = latency.latency(
            "request_ms", "end-to-end served-request latency (ms)")
        self.queue_wait_ms = latency.latency(
            "queue_wait_ms", "admission-to-dispatch queue wait (ms)")
        self.analysis_ms = latency.latency(
            "analysis_ms", "static-lint time inside the worker (ms)")
        self.confirm_ms = latency.latency(
            "confirm_ms", "simulator-confirmation time inside the "
                          "worker (ms)")

    # -- formulas ------------------------------------------------------------

    def _rejected_total(self) -> float:
        return sum(stat.value for stat in self.rejected.values())

    def _shed_fraction(self) -> float:
        accepted = self.accepted.value
        rejected = self._rejected_total()
        return ratio(rejected, accepted + rejected)

    def _degraded_fraction(self) -> float:
        served = sum(stat.value for stat in self.tier.values())
        return ratio(self.degraded.value, served)

    # -- convenience ---------------------------------------------------------

    def reject(self, kind: str) -> None:
        self.rejected[kind].inc()

    def serve(self, tier: str, degraded: bool = False) -> None:
        self.tier[tier].inc()
        if degraded:
            self.degraded.inc()

    def observe_timings(self, timings: dict) -> None:
        """Book one served request's envelope timing breakdown into the
        ``service.latency.*`` histograms."""
        self.request_ms.observe(timings.get("total_ms", 0.0))
        self.queue_wait_ms.observe(timings.get("queue_wait_ms", 0.0))
        self.analysis_ms.observe(timings.get("analysis_ms", 0.0))
        self.confirm_ms.observe(timings.get("confirm_ms", 0.0))

    def dump(self) -> dict:
        return self.registry.dump()
