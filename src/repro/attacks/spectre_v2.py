"""Spectre-v2 (BTB, branch target injection).

The attacker trains an indirect ``BLR`` to jump to a disclosure gadget,
then runs it with a slow-to-resolve benign target: the BTB predicts the
gadget, and fetch speculates into it while the real target is still being
loaded from a cold line.

Two variants realize Table 1's full-vs-partial distinction for SpecASan
(§4.3): ``mismatched-tag`` dereferences the secret with a public-key
pointer (tag check fails — SpecASan blocks the ACCESS), while
``matched-tag`` models an in-victim-domain gadget whose pointer carries the
secret's own tag (the tag check passes — only control-flow enforcement can
stop it).  Neither gadget starts with a BTI landing pad, so SpecCFI refuses
the speculative target in both.
"""

from __future__ import annotations

import struct

from repro.attacks.common import (
    ARRAY1_BASE,
    AttackProgram,
    make_probe_array,
    plant_secret,
    PROBE_BASE,
    SECRET_BASE,
    TABLES_BASE,
    TAG_PUBLIC,
    TAG_SECRET,
    emit_transmit,
)
from repro.isa.builder import ProgramBuilder
from repro.isa.program import DataSegment
from repro.mte.tags import with_key

# Enough iterations that the 8-bit global history saturates (all-taken from
# the loop branch) before the attack run, so the trained BTB slot and the
# attack run's lookup share the same history-hashed index.
TRAIN_ITERS = 12
SECRET_VALUE = 11
TRAIN_VALUE = 1

VARIANTS = ("mismatched-tag", "matched-tag")

#: Table bases (all within the warm TABLES region except the cold rows).
OFFSETS_TABLE = TABLES_BASE            # per-iteration byte offsets
PTR_TABLE = TABLES_BASE + 0x200        # gadget data pointers
TGT_TABLE = TABLES_BASE + 0x600        # branch targets
#: Byte offset of the attack-run row — its own cache line (past every
#: training row), cold until used.
COLD_ROW = 0x100


def build(variant: str = "mismatched-tag") -> AttackProgram:
    """Construct the Spectre-v2 PoC for ``variant``."""
    if variant not in VARIANTS:
        raise ValueError(f"unknown spectre-v2 variant {variant!r}")
    key = TAG_PUBLIC if variant == "mismatched-tag" else TAG_SECRET
    b = ProgramBuilder()

    b.bytes_segment("array1", ARRAY1_BASE, bytes([TRAIN_VALUE] * 16),
                    tag=TAG_PUBLIC)
    plant_secret(b, SECRET_VALUE)
    make_probe_array(b)

    # Victim warms its secret line with the correct key.
    b.li("X20", with_key(SECRET_BASE, TAG_SECRET), note="victim pointer")
    b.ldrb("X21", "X20", note="victim warms its secret line")

    b.li("X3", PROBE_BASE)
    b.li("X26", OFFSETS_TABLE)
    b.li("X22", PTR_TABLE)
    b.li("X23", TGT_TABLE)
    # Pre-warm the attack-run pointer row (only the *target* row must stay
    # cold — it supplies the speculation window).
    b.li("X27", PTR_TABLE + COLD_ROW)
    b.ldr("X27", "X27", note="warm the attack-run data-pointer row")
    b.li("X25", 0, note="iteration counter")

    b.label("loop")
    b.lsl("X24", "X25", imm=3)
    b.ldr("X24", "X26", rm="X24", note="row offset for this run")
    b.ldr("X4", "X22", rm="X24", note="gadget data pointer")
    b.ldr("X9", "X23", rm="X24", note="branch target (cold on attack run)")
    b.blr("X9", note="victim indirect call")
    b.add("X25", "X25", imm=1)
    b.cmp("X25", imm=TRAIN_ITERS + 1)
    b.b_cond("LO", "loop")
    b.halt()

    b.label("gadget")  # deliberately NOT a BTI landing pad
    b.ldrb("X5", "X4", note="ACCESS: dereference gadget pointer")
    emit_transmit(b, "X5", "X3")
    b.ret()

    b.label("benign")
    b.bti(note="legitimate indirect target")
    b.ret()

    program = b.build()
    gadget = program.address_of("gadget")
    benign = program.address_of("benign")
    offsets = [i * 8 for i in range(TRAIN_ITERS)] + [COLD_ROW]
    ptr_rows = {i * 8: with_key(ARRAY1_BASE, TAG_PUBLIC)
                for i in range(TRAIN_ITERS)}
    ptr_rows[COLD_ROW] = with_key(SECRET_BASE, key)
    tgt_rows = {i * 8: gadget for i in range(TRAIN_ITERS)}
    tgt_rows[COLD_ROW] = benign
    program.add_segment(DataSegment(
        "offsets", OFFSETS_TABLE, _pack_words(dict(enumerate(
            offsets)), stride=8)))
    program.add_segment(DataSegment("ptr_rows", PTR_TABLE,
                                    _pack_sparse(ptr_rows)))
    program.add_segment(DataSegment("tgt_rows", TGT_TABLE,
                                    _pack_sparse(tgt_rows)))

    return AttackProgram(
        name="spectre-v2", variant=variant,
        builder_program=program,
        secret_value=SECRET_VALUE, secret_address=SECRET_BASE,
        benign_values=[TRAIN_VALUE],
        description="branch target injection via BTB training")


def _pack_words(rows: dict, stride: int = 1) -> bytes:
    """Pack {index: value} into little-endian 64-bit words at index*stride."""
    return _pack_sparse({index * stride: value for index, value in rows.items()})


def _pack_sparse(rows: dict) -> bytes:
    """Pack {byte_offset: word} into a zero-filled blob."""
    size = max(rows) + 8
    blob = bytearray(size)
    for offset, value in rows.items():
        blob[offset:offset + 8] = struct.pack("<Q", value & (2**64 - 1))
    return bytes(blob)
