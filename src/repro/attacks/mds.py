"""Microarchitectural Data Sampling: Fallout, RIDL, ZombieLoad (§4.1).

These attacks never mispredict a branch — the leaking load is bound to
commit, which is exactly why delay-USE (STT) and hide-TRANSMIT
(GhostMinion) defenses miss them.  They sample *in-flight* data:

- **Fallout** exploits loosenet partial-address store-to-load forwarding:
  a load whose page offset aliases an in-flight store transiently receives
  the store's data before the full-address check machine-clears.
- **RIDL / ZombieLoad** sample stale Line-Fill Buffer content: a
  line-crossing (microcode-assisted) load that hits an LFB entry whose fill
  is still in flight receives the *previous occupant's* bytes — here, the
  victim's secret line.

SpecASan stops all three by tagging the buffers themselves (§3.3.2/3.3.3):
forwarding requires matching address keys, and LFB hits are checked against
the allocation tags stored in the entry.
"""

from __future__ import annotations

from repro.attacks.common import (
    AttackProgram,
    emit_transmit,
    make_probe_array,
    PROBE_BASE,
    SECRET_BASE,
    slow_cell_segment,
    SLOW_CELLS,
    TAG_SECRET,
)
from repro.isa.builder import ProgramBuilder
from repro.mte.tags import with_key

SECRET_VALUE = 11
#: Fallout: the victim's store slot and the attacker's 4KB-aliased address.
#: Both sit at page offset 0x40 so the (page-aligned) probe accesses cannot
#: themselves loosenet-alias the victim store.
VICTIM_SLOT = 0x08040
ALIASED_ADDR = 0x09040
#: RIDL/ZombieLoad: where the sampling loads land (fresh, never-cached).
SAMPLE_LINE_RIDL = 0x0C0000
SAMPLE_LINE_ZL = 0x0D0000
#: Dummy lines that walk the LFB allocator back to the victim's entry.
DUMMY_BASE = 0x0E0000
#: Byte offset of the secret within its cache line — high enough that an
#: 8-byte load from it crosses the line boundary (the assist trigger).
SECRET_LINE_OFFSET = 60

VARIANTS = {"fallout": ("classic",), "ridl": ("classic",),
            "zombieload": ("classic",)}


def _plant_line_secret(b: ProgramBuilder) -> None:
    """A full secret line with the secret byte at the crossing offset."""
    line = bytearray(64)
    line[SECRET_LINE_OFFSET] = SECRET_VALUE
    b.bytes_segment("secret", SECRET_BASE, bytes(line), tag=TAG_SECRET)


def build_fallout(variant: str = "classic") -> AttackProgram:
    """Fallout: sample an in-flight store through loosenet aliasing."""
    b = ProgramBuilder()
    line = bytearray(16)
    line[0] = SECRET_VALUE
    b.bytes_segment("secret", SECRET_BASE, bytes(line), tag=TAG_SECRET)
    b.zero_segment("victim_slot", VICTIM_SLOT, 16, tag=TAG_SECRET)
    b.zero_segment("aliased", ALIASED_ADDR, 16)
    make_probe_array(b)
    slow_cell_segment(b)

    # Victim reads its secret (legitimately) and is about to store it.
    b.li("X20", with_key(SECRET_BASE, TAG_SECRET))
    b.ldrb("X21", "X20", note="victim holds the secret in a register")
    b.sb(note="wait for the warm-up fill")

    b.li("X3", PROBE_BASE)
    # An older slow load keeps the ROB head busy, so the victim store sits
    # in the store queue (uncommitted) while the attacker load runs.
    b.li("X15", SLOW_CELLS)
    b.ldr("X19", "X15", note="commit blocker (DRAM round trip)")

    b.li("X23", with_key(VICTIM_SLOT, TAG_SECRET))
    b.strb("X21", "X23", note="victim store: secret enters the store queue")
    b.li("X22", ALIASED_ADDR, note="attacker address: same page offset")
    b.ldrb("X5", "X22", note="loosenet match forwards the victim's data")
    emit_transmit(b, "X5", "X3")
    b.halt()

    return AttackProgram(
        name="fallout", variant=variant,
        builder_program=b.build(),
        secret_value=SECRET_VALUE, secret_address=SECRET_BASE,
        benign_values=[0],
        description="store-buffer sampling via partial-address forwarding")


def _build_lfb_sampler(name: str, sample_line: int, dummy_salt: int) -> AttackProgram:
    """Shared RIDL/ZombieLoad skeleton: walk the LFB, then sample."""
    b = ProgramBuilder()
    _plant_line_secret(b)
    make_probe_array(b)

    b.li("X3", PROBE_BASE)
    # 1. Victim pulls its secret line through the LFB (entry 0).
    b.li("X20", with_key(SECRET_BASE, TAG_SECRET))
    b.ldrb("X21", "X20", note="victim load: secret line transits the LFB")

    # 2. Fifteen dummy misses advance the LFB allocator so the *next* fill
    #    reuses the victim's (now stale) entry.
    for index in range(15):
        b.li("X16", DUMMY_BASE + dummy_salt * 0x40000 + index * 4096)
        b.ldr("X17", "X16", note="LFB-walking dummy miss")

    # 3. Delay until the victim fill has landed: a dependency chain on the
    #    victim's value gates the sampler's address computation.
    b.udiv("X13", "X21", "X21", note="delay chain (waits for the fill)")
    b.udiv("X13", "X13", "X13")
    b.and_("X13", "X13", "XZR", note="collapse to zero, keep the dependency")

    # 4. The sampler: a line-crossing (assisted) load pair on a fresh line.
    #    The first touch allocates the stale entry; the second samples it.
    b.li("X22", sample_line + SECRET_LINE_OFFSET)
    b.add("X22", "X22", "X13")
    b.ldr("X18", "X22", note="allocate the (stale) LFB entry")
    b.ldr("X5", "X22", note="SAMPLE: crossing load reads stale LFB bytes")
    b.and_("X5", "X5", imm=0xFF)
    emit_transmit(b, "X5", "X3")
    b.halt()

    program = b.build()
    return AttackProgram(
        name=name, variant="classic",
        builder_program=program,
        secret_value=SECRET_VALUE, secret_address=SECRET_BASE,
        benign_values=[0],
        description="LFB sampling via line-crossing assisted loads")


def build_ridl(variant: str = "classic") -> AttackProgram:
    """RIDL: rogue in-flight data load from the LFB."""
    return _build_lfb_sampler("ridl", SAMPLE_LINE_RIDL, dummy_salt=0)


def build_zombieload(variant: str = "classic") -> AttackProgram:
    """ZombieLoad: the line-crossing microcode-assist flavour."""
    return _build_lfb_sampler("zombieload", SAMPLE_LINE_ZL, dummy_salt=1)
