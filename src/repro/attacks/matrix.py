"""Table 1: the security matrix — mitigation per attack per defense.

The classification follows §4.3: an attack is *fully* mitigated (●) when
every variant is blocked, *partially* (◐) when some variants still leak
(e.g. a control-flow-diverted gadget whose pointer key happens to match the
secret's tag), and unmitigated (○) when every variant leaks.

``EXPECTED`` encodes the paper's Table 1 so the benchmark can report
agreement cell by cell.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.attacks import build_variants, TABLE1_ROWS
from repro.attacks.common import AttackOutcome, run_attack_program
from repro.config import DefenseKind


class Mitigation(enum.Enum):
    """One Table-1 cell."""

    FULL = "full"
    PARTIAL = "partial"
    NONE = "none"

    @property
    def symbol(self) -> str:
        return {"full": "●", "partial": "◐", "none": "○"}[self.value]


#: Defense columns of Table 1 (the unsafe baseline is implicit: everything
#: leaks under it, which the harness also verifies).
TABLE1_DEFENSES = [
    DefenseKind.STT, DefenseKind.GHOSTMINION, DefenseKind.SPECCFI,
    DefenseKind.SPECASAN, DefenseKind.SPECASAN_CFI,
]

_F, _P, _N = Mitigation.FULL, Mitigation.PARTIAL, Mitigation.NONE

#: The paper's Table 1 (columns in TABLE1_DEFENSES order).
EXPECTED: Dict[str, List[Mitigation]] = {
    "spectre-v1":     [_F, _F, _N, _F, _F],
    "spectre-v2":     [_F, _F, _F, _P, _F],
    "spectre-v5":     [_F, _F, _F, _P, _F],
    "spectre-v4":     [_F, _F, _N, _F, _F],
    "spectre-bhb":    [_F, _F, _F, _P, _F],
    "fallout":        [_N, _N, _N, _F, _F],
    "ridl":           [_N, _N, _N, _F, _F],
    "zombieload":     [_N, _N, _N, _F, _F],
    "smotherspectre": [_P, _P, _P, _P, _F],
    "interference":   [_P, _P, _P, _P, _F],
    "rewind":         [_P, _P, _P, _P, _F],
}


@dataclass
class MatrixCell:
    """One measured cell plus its supporting outcomes."""

    attack: str
    defense: DefenseKind
    mitigation: Mitigation
    outcomes: List[AttackOutcome] = field(default_factory=list)

    @property
    def matches_paper(self) -> bool:
        column = TABLE1_DEFENSES.index(self.defense)
        return EXPECTED[self.attack][column] is self.mitigation


def classify(outcomes: List[AttackOutcome]) -> Mitigation:
    """Fold per-variant outcomes into the Table-1 classification."""
    leaks = [outcome.leaked for outcome in outcomes]
    if not any(leaks):
        return Mitigation.FULL
    if all(leaks):
        return Mitigation.NONE
    return Mitigation.PARTIAL


def evaluate_cell(attack: str, defense: DefenseKind) -> MatrixCell:
    """Run every variant of ``attack`` under ``defense``."""
    outcomes = [run_attack_program(program, defense)
                for program in build_variants(attack)]
    return MatrixCell(attack, defense, classify(outcomes), outcomes)


def evaluate_matrix(attacks: Optional[List[str]] = None,
                    defenses: Optional[List[DefenseKind]] = None,
                    verify_baseline: bool = True,
                    ) -> Dict[str, Dict[DefenseKind, MatrixCell]]:
    """Regenerate Table 1 (optionally a subset)."""
    attacks = attacks or TABLE1_ROWS
    defenses = defenses or TABLE1_DEFENSES
    matrix: Dict[str, Dict[DefenseKind, MatrixCell]] = {}
    for attack in attacks:
        matrix[attack] = {}
        if verify_baseline:
            baseline = evaluate_cell(attack, DefenseKind.NONE)
            matrix[attack][DefenseKind.NONE] = baseline
        for defense in defenses:
            matrix[attack][defense] = evaluate_cell(attack, defense)
    return matrix


def render_matrix(matrix: Dict[str, Dict[DefenseKind, MatrixCell]]) -> str:
    """Format a measured matrix like the paper's Table 1."""
    defenses = []
    for row in matrix.values():
        defenses = [d for d in row if d is not DefenseKind.NONE]
        break
    header = f"{'Attack':16s}" + "".join(
        f"{d.value:>14s}" for d in defenses) + "   vs paper"
    lines = [header, "-" * len(header)]
    for attack, row in matrix.items():
        cells = [row[d] for d in defenses]
        marks = "".join(f"{c.mitigation.symbol:>14s}" for c in cells)
        agree = all(c.matches_paper for c in cells)
        lines.append(f"{attack:16s}{marks}   {'match' if agree else 'DIFFERS'}")
    return "\n".join(lines)
