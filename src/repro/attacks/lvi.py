"""Load Value Injection (§6 discussion) — the buffer-injection flavour.

LVI inverts MDS: instead of the attacker *sampling* stale buffer contents,
the attacker *plants* a value that a victim's load transiently consumes,
hijacking the victim's own (fully authorized) dataflow.  Here the injection
vector is the stale Line-Fill Buffer window: the attacker parks its payload
in an LFB entry, walks the allocator so the victim's next miss reuses that
entry, and the victim's line-crossing load transiently receives the
attacker's index instead of its own.  The victim then dereferences its own
table at the injected index and innocently transmits the result.

§6's claim, reproduced here: because SpecASan validates *all* speculative
accesses to microarchitectural buffers against the allocation tags stored
in them, the injected (attacker-tagged) stale data never reaches the victim
— "ensuring that speculative execution operates only on safe and validated
data".  Register-targeted LVI variants, which involve no tagged resource,
remain out of scope (also per §6).
"""

from __future__ import annotations

from repro.attacks.common import (
    AttackProgram,
    emit_transmit,
    make_probe_array,
    PROBE_BASE,
    SECRET_BASE,
    TAG_SECRET,
)
from repro.isa.builder import ProgramBuilder
from repro.mte.tags import with_key

#: The index the attacker injects, and the victim-table entry it exposes.
INJECTED_INDEX = 11
SECRET_VALUE = 11
BENIGN_VALUE = 1

ATTACKER_LINE = 0x0C0000          # attacker's payload line (attacker tag)
VICTIM_VAR = 0x0D0000             # the victim variable the load targets
DUMMY_BASE = 0x0E0000
TAG_ATTACKER = 0x2
#: Line offset of the victim's variable — high enough that the 8-byte load
#: crosses the line (the microcode-assist trigger).
VAR_OFFSET = 60


def build(variant: str = "classic") -> AttackProgram:
    """Construct the LVI PoC."""
    if variant != "classic":
        raise ValueError(f"unknown lvi variant {variant!r}")
    b = ProgramBuilder()

    # Attacker payload line: the injected index sits where the victim's
    # crossing load will sample it.
    payload = bytearray(64)
    payload[VAR_OFFSET] = INJECTED_INDEX
    b.bytes_segment("payload", ATTACKER_LINE, bytes(payload),
                    tag=TAG_ATTACKER)
    # Victim state: the variable (legitimately 0) and the private table —
    # the secret lives at the injected index.
    var_line = bytearray(64)
    b.bytes_segment("victim_var", VICTIM_VAR, bytes(var_line), tag=TAG_SECRET)
    table = bytearray(16)
    table[0] = BENIGN_VALUE
    table[INJECTED_INDEX] = SECRET_VALUE
    b.bytes_segment("secret", SECRET_BASE, bytes(table), tag=TAG_SECRET)
    make_probe_array(b)

    b.li("X3", PROBE_BASE)
    # 0. The victim's table is hot (it is the victim's working data).
    b.li("X2", with_key(SECRET_BASE, TAG_SECRET))
    b.ldrb("X7", "X2", note="victim's table is warm")
    b.sb(note="wait for the warm-up fill")
    # 1. Attacker parks its payload in the LFB (entry 0).
    b.li("X20", with_key(ATTACKER_LINE, TAG_ATTACKER))
    b.ldrb("X21", "X20", note="attacker primes the LFB with its payload")

    # 2. Walk the LFB allocator so the victim's miss reuses that entry.
    for index in range(15):
        b.li("X16", DUMMY_BASE + index * 4096)
        b.ldr("X17", "X16", note="LFB-walking dummy miss")

    # 3. Delay until the payload fill has landed, without touching caches.
    b.udiv("X13", "X21", "X21", note="delay chain")
    b.udiv("X13", "X13", "X13")
    b.and_("X13", "X13", "XZR")

    # 4. The victim's own code: a line-crossing load of its variable,
    #    then a table lookup and a (legitimate) dependent access.  All
    #    pointers carry the victim's key — every tag check passes on the
    #    architectural path.
    b.li("X22", with_key(VICTIM_VAR + VAR_OFFSET, TAG_SECRET))
    b.add("X22", "X22", "X13")
    b.ldr("X18", "X22", note="victim touch: allocates the stale LFB entry")
    b.ldr("X5", "X22", note="victim load: transiently INJECTED by attacker")
    b.and_("X5", "X5", imm=0xFF)
    b.ldrb("X6", "X2", rm="X5", note="victim table lookup at injected index")
    emit_transmit(b, "X6", "X3")
    b.halt()

    return AttackProgram(
        name="lvi", variant=variant,
        builder_program=b.build(),
        secret_value=SECRET_VALUE, secret_address=SECRET_BASE,
        benign_values=[BENIGN_VALUE],
        description="load value injection through the stale-LFB window")
