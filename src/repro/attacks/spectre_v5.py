"""Spectre-v5 / Spectre-RSB (ret2spec).

A recursive call chain one level deeper than the 16-entry circular RSB
wraps the buffer: the outermost return's prediction re-reads a *stale*
slot and speculatively returns into the attacker-controlled inner return
site.  A guard there (``CBNZ X26``) is taken on every architectural inner
return but falls into the disclosure gadget exactly when entered from the
wrapped misprediction (depth counter already zero) — the gadget never runs
architecturally.  The outermost return is held unresolved by restoring LR
from a cold memory cell.

Variants mirror Spectre-v2's: ``mismatched-tag`` is stopped by SpecASan's
tag check; ``matched-tag`` (an in-domain gadget) is only stopped by
control-flow enforcement — SpecCFI's deep shadow stack predicts the
correct return target, so speculation never reaches the gadget.
"""

from __future__ import annotations

from repro.attacks.common import (
    AttackProgram,
    emit_transmit,
    make_probe_array,
    plant_secret,
    PROBE_BASE,
    SCRATCH_BASE,
    SECRET_BASE,
    slow_cell_segment,
    SLOW_CELLS,
    TAG_PUBLIC,
    TAG_SECRET,
)
from repro.isa.builder import ProgramBuilder
from repro.mte.tags import with_key

SECRET_VALUE = 11
#: One deeper than the RSB so the outermost return reads a wrapped slot.
DEPTH = 17

VARIANTS = ("mismatched-tag", "matched-tag")


def build(variant: str = "mismatched-tag") -> AttackProgram:
    """Construct the Spectre-RSB PoC for ``variant``."""
    if variant not in VARIANTS:
        raise ValueError(f"unknown spectre-v5 variant {variant!r}")
    key = TAG_PUBLIC if variant == "mismatched-tag" else TAG_SECRET
    b = ProgramBuilder()

    plant_secret(b, SECRET_VALUE)
    make_probe_array(b)
    b.zero_segment("callstack", SCRATCH_BASE, 0x400)
    slow_cell_segment(b, count=20, values=[0])  # cell 0 patched post-link

    b.li("X20", with_key(SECRET_BASE, TAG_SECRET))
    b.ldrb("X21", "X20", note="victim warms its secret line")
    b.sb(note="wait for the warm-up fill")

    b.li("X2", with_key(SECRET_BASE, key), note="gadget pointer")
    b.li("X3", PROBE_BASE)
    b.li("X28", SCRATCH_BASE + 0x200, note="manual call stack")
    b.li("X26", 0, note="recursion depth")
    b.li("X14", SLOW_CELLS, note="cold cell holding the outermost LR")

    b.bl("f")
    return_to_main = b.current_address()
    b.halt()

    b.label("f")
    b.sub("X28", "X28", imm=8)
    b.str_("X30", "X28", note="push LR")
    b.add("X26", "X26", imm=1)
    b.cmp("X26", imm=DEPTH)
    b.b_cond("HS", "unwind")
    b.bl("f")
    # --- the wrapped-RSB speculative entry point -------------------------
    b.label("inner_return")
    b.cbnz("X26", "unwind", note="architectural inner returns skip the gadget")
    # Reached only speculatively, from the outermost RET's stale prediction
    # (X26 == 0 once the whole chain has unwound).
    b.ldrb("X5", "X2", note="ACCESS: speculative-only secret read")
    emit_transmit(b, "X5", "X3")
    b.b("unwind")
    # ----------------------------------------------------------------------
    b.label("unwind")
    b.sub("X26", "X26", imm=1)
    b.cbnz("X26", "fast_restore")
    # Index the cold cell by depth: early wrong-path visits (while the CBNZ
    # predictor is still cold) carry X26 != 0 and touch *other* lines, so
    # the real (depth-0) cell stays cold until the outermost unwind.
    b.lsl("X24", "X26", imm=12)
    b.ldr("X30", "X14", rm="X24",
          note="outermost LR from a COLD cell (big window)")
    b.b("do_ret")
    b.label("fast_restore")
    b.ldr("X30", "X28", note="pop LR")
    b.label("do_ret")
    b.add("X28", "X28", imm=8)
    b.ret()

    program = b.build()
    # The cold cell must hold the true outermost return address.
    for segment in program.data_segments:
        if segment.name == "slow_cells":
            import struct
            data = bytearray(segment.data)
            data[0:8] = struct.pack("<Q", return_to_main)
            segment.data = bytes(data)
            break
    return AttackProgram(
        name="spectre-v5", variant=variant,
        builder_program=program,
        secret_value=SECRET_VALUE, secret_address=SECRET_BASE,
        benign_values=[],
        description="ret2spec via circular-RSB wrap-around")
