"""Reusable gadget building blocks, factored out of the hand-written PoCs.

The attack suite and the witness synthesizer
(:mod:`repro.analysis.witness`) assemble the same four ingredients —
data-driven training loop, victim warm-up, bounds-check gadget, transmit
sequence — so they live here once.  :func:`repro.attacks.spectre_v1.build`
is these blocks composed verbatim; the witness builders recompose them
with allocator-placed (:class:`~repro.mte.allocator.TaggedHeap`) secrets
and per-gadget-class tweaks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.attacks.common import emit_transmit
from repro.isa.builder import ProgramBuilder
from repro.mte.allocator import Allocation, TaggedHeap


@dataclass
class TrainingTable:
    """One per-iteration operand table driving a training loop.

    Each loop iteration loads ``values[i]`` into ``dest_reg`` from the
    64-bit word table at ``base`` (pointer kept in ``ptr_reg``).  Training
    iterations hold benign values; the final iteration holds the attack
    value — the classic data-driven mistraining shape, which keeps the
    branch history identical between training and attack runs.
    """

    name: str
    base: int
    ptr_reg: str
    dest_reg: str
    values: List[int] = field(default_factory=list)
    note: str = ""

    def emit_segment(self, b: ProgramBuilder) -> None:
        b.words_segment(self.name, self.base, self.values)


def emit_victim_warmup(b: ProgramBuilder, pointer: int,
                       ptr_reg: str = "X20", dest_reg: str = "X21") -> None:
    """A legitimate (key-matching) victim access that caches the secret
    line, so the later speculative ACCESS is an L1 hit."""
    b.li(ptr_reg, pointer, note="victim pointer")
    b.ldrb(dest_reg, ptr_reg, note="victim legitimately touches its secret")


def emit_training_loop(b: ProgramBuilder, gadget_label: str,
                       tables: List[TrainingTable], iters: int,
                       counter: str = "X25", scratch: str = "X24",
                       loop_label: str = "loop") -> None:
    """The mistraining driver: ``iters`` calls into ``gadget_label``, with
    each :class:`TrainingTable` supplying that iteration's operand.

    Emits only code (``BL`` per iteration, ``HALT`` after the loop); call
    :meth:`TrainingTable.emit_segment` for the data tables.
    """
    for table in tables:
        b.li(table.ptr_reg, table.base)
    b.li(counter, 0, note="iteration counter")
    b.label(loop_label)
    b.lsl(scratch, counter, imm=3)
    for table in tables:
        b.ldr(table.dest_reg, table.ptr_reg, rm=scratch, note=table.note)
    b.bl(gadget_label)
    b.add(counter, counter, imm=1)
    b.cmp(counter, imm=iters)
    b.b_cond("LO", loop_label)
    b.halt()


def emit_bounds_check_gadget(b: ProgramBuilder, label: str = "gadget",
                             size_reg: str = "X10", index_reg: str = "X0",
                             array_reg: str = "X2", probe_reg: str = "X3",
                             value_reg: str = "X5",
                             skip_label: str = "skip") -> None:
    """Listing 1's victim: slow size load, bounds check, ACCESS+TRANSMIT."""
    b.label(label)
    b.ldr("X1", size_reg, note="LDR X1, [ARRAY1_SIZE]")
    b.cmp(index_reg, "X1", note="X < ARRAY1_SIZE")
    b.b_cond("HS", skip_label, note="mistrained branch")
    b.ldrb(value_reg, array_reg, rm=index_reg, note="ACCESS: load ARRAY1[X]")
    emit_transmit(b, value_reg, probe_reg)
    b.label(skip_label)
    b.ret()


def heap_secret(b: ProgramBuilder, heap: TaggedHeap, value: int,
                tag: Optional[int] = None,
                name: str = "secret") -> Allocation:
    """Place a secret byte via the MTE allocator (§2.3 malloc tagging).

    The allocation's tag lands on the data segment, so the loader replays
    it into DRAM tag storage; the returned :class:`Allocation` carries the
    correctly-keyed ``pointer`` for victim warm-up code.
    """
    allocation = heap.malloc(16, tag=tag)
    b.bytes_segment(name, allocation.address,
                    bytes([value & 0xFF] + [0] * 15), tag=allocation.tag)
    return allocation


def heap_array(b: ProgramBuilder, heap: TaggedHeap, name: str,
               data: bytes, tag: Optional[int] = None) -> Allocation:
    """Allocate and initialize an attacker-reachable array on the heap."""
    allocation = heap.malloc(len(data), tag=tag)
    b.bytes_segment(name, allocation.address, data, tag=allocation.tag)
    return allocation
