"""Attack proof-of-concepts for every Table-1 variant.

The registry maps each attack to its variant builders; :func:`build_variants`
returns the ready-to-run :class:`~repro.attacks.common.AttackProgram` list
for one attack, and :mod:`repro.attacks.matrix` turns the outcomes into the
paper's full/partial/none classification.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

from repro.attacks import mds, scc, spectre_bhb, spectre_v1, spectre_v2, \
    spectre_v4, spectre_v5
from repro.attacks.common import (
    AttackOutcome,
    AttackProgram,
    run_attack_program,
)

#: attack name -> list of (variant name, builder) pairs.
REGISTRY: Dict[str, List[Tuple[str, Callable[[], AttackProgram]]]] = {
    "spectre-v1": [("classic", spectre_v1.build)],
    "spectre-v2": [(v, (lambda v=v: spectre_v2.build(v)))
                   for v in spectre_v2.VARIANTS],
    "spectre-v5": [(v, (lambda v=v: spectre_v5.build(v)))
                   for v in spectre_v5.VARIANTS],
    "spectre-v4": [("classic", spectre_v4.build)],
    "spectre-bhb": [(v, (lambda v=v: spectre_bhb.build(v)))
                    for v in spectre_bhb.VARIANTS],
    "fallout": [("classic", mds.build_fallout)],
    "ridl": [("classic", mds.build_ridl)],
    "zombieload": [("classic", mds.build_zombieload)],
}
for _attack in scc.ATTACKS:
    REGISTRY[_attack] = [
        (variant, (lambda a=_attack, v=variant: scc.build(a, v)))
        for variant in scc.VARIANTS]

#: Row order of the paper's Table 1.
TABLE1_ROWS = [
    "spectre-v1", "spectre-v2", "spectre-v5", "spectre-v4", "spectre-bhb",
    "fallout", "ridl", "zombieload",
    "smotherspectre", "interference", "rewind",
]


def build_variants(attack: str) -> List[AttackProgram]:
    """All variant programs of ``attack`` (fresh builds)."""
    return [builder() for _, builder in REGISTRY[attack]]


__all__ = [
    "AttackOutcome",
    "AttackProgram",
    "build_variants",
    "REGISTRY",
    "run_attack_program",
    "TABLE1_ROWS",
]
