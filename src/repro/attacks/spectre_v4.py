"""Spectre-v4 / Spectre-STL (speculative store bypass).

A store to the victim slot has a slow-to-resolve address; the memory
dependence predictor lets a younger load to the *same* address speculate
past it and read the **stale** memory content — the secret the store was
about to overwrite.  When the store's address resolves, the ordering
violation replays the load, which then (correctly) forwards the safe value.

SpecASan's mitigation (§4.1): the bypassing load is *tagged* (its pointer
carries the victim's key), so its data is held until the store queue
disambiguates; the speculatively-fetched secret never reaches dependents.
"""

from __future__ import annotations

from repro.attacks.common import (
    AttackProgram,
    emit_transmit,
    make_probe_array,
    plant_secret,
    PROBE_BASE,
    SECRET_BASE,
    slow_cell_segment,
    SLOW_CELLS,
    TAG_SECRET,
)
from repro.isa.builder import ProgramBuilder
from repro.mte.tags import with_key

SECRET_VALUE = 11
SAFE_VALUE = 2


def build(variant: str = "classic") -> AttackProgram:
    """Construct the Spectre-STL PoC."""
    if variant != "classic":
        raise ValueError(f"unknown spectre-v4 variant {variant!r}")
    b = ProgramBuilder()
    victim_ptr = with_key(SECRET_BASE, TAG_SECRET)

    plant_secret(b, SECRET_VALUE)       # the stale content of the slot
    make_probe_array(b)
    # The slow cell holds the (tagged) store address itself, so the store's
    # address resolution takes a DRAM round trip.
    slow_cell_segment(b, values=[victim_ptr])

    # Victim warms the slot so the bypassing load is an L1 hit (the window
    # is the store-address resolution, not the load's own latency).  The
    # barrier makes sure the warm-up fill has actually landed.
    b.li("X20", victim_ptr)
    b.ldrb("X21", "X20", note="victim warms its slot")
    b.sb(note="wait for the warm-up fill")

    b.li("X3", PROBE_BASE)
    b.li("X12", SAFE_VALUE, note="the value the store will write")
    b.li("X2", victim_ptr)

    b.li("X15", SLOW_CELLS)
    b.ldr("X11", "X15", note="store address arrives late (DRAM round trip)")
    b.str_("X12", "X11", note="victim store: overwrite the secret")
    b.ldr("X5", "X2", note="bypassing load: reads the STALE secret")
    emit_transmit(b, "X5", "X3")
    b.halt()

    return AttackProgram(
        name="spectre-v4", variant=variant,
        builder_program=b.build(),
        secret_value=SECRET_VALUE, secret_address=SECRET_BASE,
        benign_values=[SAFE_VALUE],
        description="speculative store bypass reading stale memory")
