"""Shared scaffolding for attack proof-of-concepts.

Every attack in :mod:`repro.attacks` builds a self-contained program with
the :class:`~repro.isa.builder.ProgramBuilder` and describes itself with an
:class:`AttackProgram`: where the planted secret lives, where the probe
array is, and which covert channel the PoC uses.  :func:`run_attack_program`
executes it under a chosen defense and applies the paper's §4.3 evaluation
methodology: rather than timing a real side channel, it inspects the
simulator's microarchitectural state (cache/LFB presence) and the
detection log of secret-dependent speculative activity.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.config import CORTEX_A76, DefenseKind, SystemConfig
from repro.errors import DeadlockError, SimulationError
from repro.isa.builder import ProgramBuilder
from repro.system import build_system

#: Probe-array stride: one value per page, like the paper's ARRAY2[Y*4096].
PROBE_STRIDE = 4096
#: Number of candidate secret values the detector probes (one nibble).
CANDIDATES = 16

# Fixed address-space layout shared by the gadgets (untagged addresses).
ARRAY1_BASE = 0x04000       # victim array (in-bounds region)
SECRET_BASE = 0x04100       # the planted secret, a different tag granule
SIZE_CELL_A = 0x05000       # ARRAY1_SIZE copy used while training (cached)
SIZE_CELL_B = 0x06040       # ARRAY1_SIZE copy used in the attack (cold)
TABLES_BASE = 0x07000       # per-iteration index/pointer tables
PROBE_BASE = 0x100000       # ARRAY2: the transmission/probe array
SCRATCH_BASE = 0x0A000      # spill space for gadgets
SLOW_CELLS = 0x200000       # never-touched lines used to delay resolution

#: MTE tags used by the gadgets.
TAG_PUBLIC = 0x2            # attacker-accessible data
TAG_SECRET = 0x5            # the victim's protected data


@dataclass
class AttackProgram:
    """A built PoC plus everything the detector needs."""

    name: str
    variant: str
    builder_program: object  # repro.isa.program.Program
    secret_value: int
    secret_address: int
    secret_size: int = 16
    probe_base: int = PROBE_BASE
    probe_stride: int = PROBE_STRIDE
    candidates: int = CANDIDATES
    #: "cache" — recover via probe-array presence; "contention" — leak via
    #: secret-dependent execution-resource usage (SCC attacks).
    channel: str = "cache"
    #: Probe values architecturally touched by training/replay (excluded
    #: from the leak decision).
    benign_values: List[int] = field(default_factory=list)
    description: str = ""
    max_cycles: int = 400_000


@dataclass
class AttackOutcome:
    """Result of one PoC under one defense."""

    attack: str
    variant: str
    defense: DefenseKind
    leaked: bool
    recovered: List[int]
    contention_events: int
    cycles: int
    faulted: bool
    restricted: int

    def __str__(self) -> str:  # pragma: no cover - convenience
        verdict = "LEAKED" if self.leaked else "blocked"
        return (f"{self.attack}/{self.variant} under {self.defense.value}: "
                f"{verdict} (recovered={self.recovered})")


def run_attack_program(attack: AttackProgram, defense: DefenseKind,
                       config: Optional[SystemConfig] = None,
                       policy_factory=None) -> AttackOutcome:
    """Run ``attack`` under ``defense`` and evaluate leakage (§4.3).

    ``policy_factory`` substitutes a custom policy (ablation variants);
    ``defense`` is still used for reporting.
    """
    system = build_system((config or CORTEX_A76).with_defense(defense),
                          policy_factory=policy_factory)
    core = system.prepare(attack.builder_program)
    core.secret_ranges = [(attack.secret_address,
                           attack.secret_address + attack.secret_size)]
    try:
        core.run(max_cycles=attack.max_cycles)
    except (DeadlockError, SimulationError):
        # Deadlock/timeout counts as "did not leak via cache"; anything
        # else (a real bug) propagates.
        pass
    # Let in-flight fills land before probing.
    system.hierarchy.drain(core.cycle + 10_000)
    recovered = [
        value for value in range(attack.candidates)
        if value not in attack.benign_values
        and system.hierarchy.is_cached(
            attack.probe_base + value * attack.probe_stride)
    ]
    contention = sum(1 for event in core.leak_log
                     if event["kind"] == "contention")
    if attack.channel == "cache":
        leaked = attack.secret_value in recovered
    else:
        leaked = contention > 0
    return AttackOutcome(
        attack=attack.name, variant=attack.variant, defense=defense,
        leaked=leaked, recovered=recovered, contention_events=contention,
        cycles=core.cycle, faulted=core.fault is not None,
        restricted=len(core.policy.restricted_seqs))


def make_probe_array(b: ProgramBuilder, candidates: int = CANDIDATES,
                     tag: Optional[int] = None) -> int:
    """Lay out the probe (ARRAY2) segment; returns its base address."""
    b.zero_segment("probe", PROBE_BASE, candidates * PROBE_STRIDE, tag=tag)
    return PROBE_BASE


def plant_secret(b: ProgramBuilder, value: int,
                 address: int = SECRET_BASE, tag: int = TAG_SECRET) -> int:
    """Place the secret byte in its own tag granule; returns its address."""
    b.bytes_segment("secret", address, bytes([value] + [0] * 15), tag=tag)
    return address


def emit_transmit(b: ProgramBuilder, value_reg: str, probe_reg: str,
                  scratch: str = "X6", dest: str = "X8") -> None:
    """The USE+TRANSMIT stages: ``LDRB dest, [probe + value << 12]``."""
    b.lsl(scratch, value_reg, imm=12, note="USE: Y * 4096")
    b.add("X7", probe_reg, scratch)
    b.ldrb(dest, "X7", note="TRANSMIT: touch probe[Y*4096]")


def emit_slow_load(b: ProgramBuilder, dest: str, cell_index: int,
                   addr_reg: str = "X15") -> None:
    """Load from a never-before-touched line — a guaranteed DRAM-latency
    miss used to hold branches/addresses unresolved (the speculation
    window)."""
    b.li(addr_reg, SLOW_CELLS + cell_index * 4096)
    b.ldr(dest, addr_reg, note="slow load (speculation window)")


def slow_cell_segment(b: ProgramBuilder, count: int = 8,
                      values: Optional[List[int]] = None) -> None:
    """Back the slow cells with real memory so the loads return data."""
    import struct
    payload = bytearray(count * 4096)
    for index in range(count):
        value = 0 if values is None or index >= len(values) else values[index]
        payload[index * 4096:index * 4096 + 8] = struct.pack(
            "<Q", value & (2**64 - 1))
    b.bytes_segment("slow_cells", SLOW_CELLS, bytes(payload))
