"""Speculative Contention Channel attacks: SMoTHERSpectre, Speculative
Interference, SpectreRewind (§4.1).

These attacks transmit without touching the cache: a speculatively-accessed
secret modulates *execution-resource* usage (issue-port pressure, divider
occupancy, timing of older instructions), which a co-runner observes.  Per
§4.3's methodology the detector does not time real contention; it checks
whether any secret-derived value reached an execution unit speculatively
(the ``contention`` entries of the core's leak log).

Each attack is built in three variants that jointly reproduce the paper's
full/partial classification:

- ``alu-contention`` — entered through a mistrained *conditional* branch,
  secret accessed out-of-bounds (mismatched tag), transmitted through a
  secret-dependent MUL/DIV chain.  Only defenses that stop the ACCESS
  (fences, SpecASan) help; STT-Default does not delay arithmetic, and
  GhostMinion only hides cache state.
- ``load-contention`` — entered through an injected *indirect* branch,
  mismatched tag, transmitted through a secret-indexed load (observable as
  cache state).  Every studied defense blocks some step of this one.
- ``matched-tag`` — entered through an injected indirect branch to an
  in-victim-domain gadget whose pointer key matches the secret's tag,
  transmitted through arithmetic.  Only control-flow enforcement
  (SpecCFI / SpecASan+CFI) stops it.
"""

from __future__ import annotations

from repro.attacks.common import (
    ARRAY1_BASE,
    AttackProgram,
    make_probe_array,
    plant_secret,
    PROBE_BASE,
    SECRET_BASE,
    SIZE_CELL_A,
    SIZE_CELL_B,
    TABLES_BASE,
    TAG_PUBLIC,
    TAG_SECRET,
)
from repro.attacks import spectre_v2
from repro.isa.builder import ProgramBuilder
from repro.mte.tags import with_key

SECRET_VALUE = 11

ATTACKS = ("smotherspectre", "interference", "rewind")
VARIANTS = ("alu-contention", "load-contention", "matched-tag")

#: Contention resource per attack: the op class whose port pressure the
#: co-runner observes.
_CONTENTION_OPS = {
    "smotherspectre": "mul",       # issue-port contention
    "interference": "mixed",       # delaying older instructions
    "rewind": "udiv",              # divider occupancy
}


def _emit_contention(b: ProgramBuilder, attack: str, value_reg: str) -> None:
    """The secret-dependent resource-usage chain (the SCC 'transmit')."""
    style = _CONTENTION_OPS[attack]
    if style == "mul":
        for _ in range(4):
            b.mul("X6", value_reg, value_reg, note="port-pressure op")
    elif style == "udiv":
        b.add("X6", value_reg, imm=1)
        for _ in range(3):
            b.udiv("X6", "X6", "X6", note="divider-occupancy op")
    else:  # mixed
        b.mul("X6", value_reg, value_reg)
        b.add("X6", "X6", value_reg)
        b.mul("X6", "X6", value_reg, note="interference chain")


def _build_pht_entry(attack: str) -> AttackProgram:
    """Variant A: spectre-v1-style entry, OOB access, ALU contention."""
    b = ProgramBuilder()
    oob_index = SECRET_BASE - ARRAY1_BASE
    b.bytes_segment("array1", ARRAY1_BASE, bytes([1] * 16), tag=TAG_PUBLIC)
    plant_secret(b, SECRET_VALUE)
    make_probe_array(b)
    b.words_segment("size_a", SIZE_CELL_A, [16])
    b.words_segment("size_b", SIZE_CELL_B, [16])
    iters = 8
    indices = [1 + (i % 3) for i in range(iters - 1)] + [oob_index]
    ptrs = [SIZE_CELL_A] * (iters - 1) + [SIZE_CELL_B]
    b.words_segment("idx_table", TABLES_BASE, indices)
    b.words_segment("ptr_table", TABLES_BASE + 0x200, ptrs)

    b.li("X20", with_key(SECRET_BASE, TAG_SECRET))
    b.ldrb("X21", "X20", note="victim warms its secret line")
    b.li("X2", with_key(ARRAY1_BASE, TAG_PUBLIC))
    b.li("X22", TABLES_BASE)
    b.li("X23", TABLES_BASE + 0x200)
    b.li("X25", 0)

    b.label("loop")
    b.lsl("X24", "X25", imm=3)
    b.ldr("X0", "X22", rm="X24")
    b.ldr("X10", "X23", rm="X24")
    b.bl("gadget")
    b.add("X25", "X25", imm=1)
    b.cmp("X25", imm=iters)
    b.b_cond("LO", "loop")
    b.halt()

    b.label("gadget")
    b.ldr("X1", "X10", note="bounds value (cold on the attack run)")
    b.cmp("X0", "X1")
    b.b_cond("HS", "skip")
    b.ldrb("X5", "X2", rm="X0", note="ACCESS (OOB on the attack run)")
    _emit_contention(b, attack, "X5")
    b.label("skip")
    b.ret()

    return AttackProgram(
        name=attack, variant="alu-contention",
        builder_program=b.build(),
        secret_value=SECRET_VALUE, secret_address=SECRET_BASE,
        channel="contention", benign_values=[1],
        description="conditional-branch entry, arithmetic contention channel")


def _build_btb_entry(attack: str, matched: bool) -> AttackProgram:
    """Variants B/C: spectre-v2-style injected entry."""
    base = spectre_v2.build("matched-tag" if matched else "mismatched-tag")
    program = base.builder_program
    if matched:
        # Variant C transmits through arithmetic instead of the probe load:
        # rewrite the gadget's transmit into a contention chain by building
        # a fresh program variant below instead of patching instructions.
        return _build_btb_contention(attack)
    return AttackProgram(
        name=attack, variant="load-contention",
        builder_program=program,
        secret_value=base.secret_value, secret_address=base.secret_address,
        channel="cache", benign_values=base.benign_values,
        description="injected indirect entry, load/cache observable")


def _build_btb_contention(attack: str) -> AttackProgram:
    """Variant C: injected entry, matched tag, arithmetic contention."""
    b = ProgramBuilder()
    b.bytes_segment("array1", ARRAY1_BASE, bytes([1] * 16), tag=TAG_PUBLIC)
    plant_secret(b, SECRET_VALUE)
    make_probe_array(b)

    b.li("X20", with_key(SECRET_BASE, TAG_SECRET))
    b.ldrb("X21", "X20", note="victim warms its secret line")

    b.li("X3", PROBE_BASE)
    b.li("X26", spectre_v2.OFFSETS_TABLE)
    b.li("X22", spectre_v2.PTR_TABLE)
    b.li("X23", spectre_v2.TGT_TABLE)
    b.li("X27", spectre_v2.PTR_TABLE + spectre_v2.COLD_ROW)
    b.ldr("X27", "X27", note="warm the attack-run pointer row")
    b.li("X25", 0)

    b.label("loop")
    b.lsl("X24", "X25", imm=3)
    b.ldr("X24", "X26", rm="X24")
    b.ldr("X4", "X22", rm="X24")
    b.ldr("X9", "X23", rm="X24")
    b.blr("X9")
    b.add("X25", "X25", imm=1)
    b.cmp("X25", imm=spectre_v2.TRAIN_ITERS + 1)
    b.b_cond("LO", "loop")
    b.halt()

    b.label("gadget")  # NOT a landing pad
    b.ldrb("X5", "X4", note="ACCESS (matched tag: check passes)")
    _emit_contention(b, attack, "X5")
    b.ret()

    b.label("benign")
    b.bti()
    b.ret()

    program = b.build()
    gadget = program.address_of("gadget")
    benign = program.address_of("benign")
    from repro.isa.program import DataSegment
    offsets = [i * 8 for i in range(spectre_v2.TRAIN_ITERS)] + [
        spectre_v2.COLD_ROW]
    ptr_rows = {i * 8: with_key(ARRAY1_BASE, TAG_PUBLIC)
                for i in range(spectre_v2.TRAIN_ITERS)}
    ptr_rows[spectre_v2.COLD_ROW] = with_key(SECRET_BASE, TAG_SECRET)
    tgt_rows = {i * 8: gadget for i in range(spectre_v2.TRAIN_ITERS)}
    tgt_rows[spectre_v2.COLD_ROW] = benign
    program.add_segment(DataSegment(
        "offsets", spectre_v2.OFFSETS_TABLE,
        spectre_v2._pack_words(dict(enumerate(offsets)), stride=8)))
    program.add_segment(DataSegment(
        "ptr_rows", spectre_v2.PTR_TABLE, spectre_v2._pack_sparse(ptr_rows)))
    program.add_segment(DataSegment(
        "tgt_rows", spectre_v2.TGT_TABLE, spectre_v2._pack_sparse(tgt_rows)))

    return AttackProgram(
        name=attack, variant="matched-tag",
        builder_program=program,
        secret_value=SECRET_VALUE, secret_address=SECRET_BASE,
        channel="contention", benign_values=[1],
        description="injected indirect entry, in-domain gadget, contention")


def build(attack: str, variant: str = "alu-contention") -> AttackProgram:
    """Construct the SCC PoC ``attack``/``variant``."""
    if attack not in ATTACKS:
        raise ValueError(f"unknown SCC attack {attack!r}")
    if variant == "alu-contention":
        return _build_pht_entry(attack)
    if variant == "load-contention":
        return _build_btb_entry(attack, matched=False)
    if variant == "matched-tag":
        return _build_btb_entry(attack, matched=True)
    raise ValueError(f"unknown SCC variant {variant!r}")
