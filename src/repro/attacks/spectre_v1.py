"""Spectre-v1 (PHT, bounds-check bypass) — the paper's running example.

The gadget reproduces Listing 1: a victim bounds check ``if (X <
ARRAY1_SIZE)`` guarding ``ARRAY1[X]``, with the size load made slow (cold
line) so the mistrained branch stays unresolved while the speculative path
performs ACCESS → USE → TRANSMIT.  Training runs the same branch (same
gshare history context, thanks to a data-driven loop) with in-bounds
indices; the final iteration supplies an out-of-bounds index reaching into
a granule tagged with the *secret's* tag, so the pointer key (public) and
the lock (secret) mismatch — which is precisely what SpecASan detects
(Figure 5's walkthrough).

The program is :mod:`repro.attacks.blocks` composed verbatim — the witness
synthesizer (:mod:`repro.analysis.witness`) reuses the same blocks.
"""

from __future__ import annotations

from repro.attacks.blocks import (
    emit_bounds_check_gadget,
    emit_training_loop,
    emit_victim_warmup,
    TrainingTable,
)
from repro.attacks.common import (
    ARRAY1_BASE,
    AttackProgram,
    make_probe_array,
    plant_secret,
    PROBE_BASE,
    SECRET_BASE,
    SIZE_CELL_A,
    SIZE_CELL_B,
    TABLES_BASE,
    TAG_PUBLIC,
    TAG_SECRET,
)
from repro.isa.builder import ProgramBuilder
from repro.mte.tags import with_key

#: Training iterations before the out-of-bounds attempt.
TRAIN_ITERS = 7
#: The secret nibble the attack tries to exfiltrate.
SECRET_VALUE = 11
#: Value the in-bounds training elements hold (probe[1] becomes benign).
TRAIN_VALUE = 1
#: ARRAY1_SIZE as the victim declares it.
ARRAY1_SIZE = 16


def build(variant: str = "classic") -> AttackProgram:
    """Construct the Spectre-v1 PoC program."""
    if variant != "classic":
        raise ValueError(f"unknown spectre-v1 variant {variant!r}")
    b = ProgramBuilder()
    oob_index = SECRET_BASE - ARRAY1_BASE

    # Data layout.
    b.bytes_segment("array1", ARRAY1_BASE,
                    bytes([TRAIN_VALUE] * ARRAY1_SIZE), tag=TAG_PUBLIC)
    plant_secret(b, SECRET_VALUE)
    make_probe_array(b)
    b.words_segment("size_a", SIZE_CELL_A, [ARRAY1_SIZE])
    b.words_segment("size_b", SIZE_CELL_B, [ARRAY1_SIZE])
    iters = TRAIN_ITERS + 1
    tables = [
        TrainingTable(
            "idx_table", TABLES_BASE, ptr_reg="X22", dest_reg="X0",
            values=[1 + (i % 3) for i in range(TRAIN_ITERS)] + [oob_index],
            note="index for this run"),
        TrainingTable(
            "ptr_table", TABLES_BASE + 0x200, ptr_reg="X23", dest_reg="X10",
            values=[SIZE_CELL_A] * TRAIN_ITERS + [SIZE_CELL_B],
            note="which ARRAY1_SIZE cell to read"),
    ]
    for table in tables:
        table.emit_segment(b)

    # Victim warm-up: a legitimate (key-matching) access caches the secret
    # line, so the speculative ACCESS would be an L1 hit.
    emit_victim_warmup(b, with_key(SECRET_BASE, TAG_SECRET))

    # Attacker state.
    b.li("X2", with_key(ARRAY1_BASE, TAG_PUBLIC), note="ARRAY1 (public tag)")
    b.li("X3", PROBE_BASE, note="ARRAY2 / probe")
    emit_training_loop(b, "gadget", tables, iters)

    # Listing 1's victim gadget.
    emit_bounds_check_gadget(b)

    return AttackProgram(
        name="spectre-v1", variant=variant,
        builder_program=b.build(),
        secret_value=SECRET_VALUE, secret_address=SECRET_BASE,
        benign_values=[TRAIN_VALUE],
        description="bounds-check bypass via PHT mistraining (Listing 1)")
