"""Spectre-v1 (PHT, bounds-check bypass) — the paper's running example.

The gadget reproduces Listing 1: a victim bounds check ``if (X <
ARRAY1_SIZE)`` guarding ``ARRAY1[X]``, with the size load made slow (cold
line) so the mistrained branch stays unresolved while the speculative path
performs ACCESS → USE → TRANSMIT.  Training runs the same branch (same
gshare history context, thanks to a data-driven loop) with in-bounds
indices; the final iteration supplies an out-of-bounds index reaching into
a granule tagged with the *secret's* tag, so the pointer key (public) and
the lock (secret) mismatch — which is precisely what SpecASan detects
(Figure 5's walkthrough).
"""

from __future__ import annotations

from repro.attacks.common import (
    ARRAY1_BASE,
    AttackProgram,
    make_probe_array,
    plant_secret,
    PROBE_BASE,
    SECRET_BASE,
    SIZE_CELL_A,
    SIZE_CELL_B,
    TABLES_BASE,
    TAG_PUBLIC,
    TAG_SECRET,
    emit_transmit,
)
from repro.isa.builder import ProgramBuilder
from repro.mte.tags import with_key

#: Training iterations before the out-of-bounds attempt.
TRAIN_ITERS = 7
#: The secret nibble the attack tries to exfiltrate.
SECRET_VALUE = 11
#: Value the in-bounds training elements hold (probe[1] becomes benign).
TRAIN_VALUE = 1
#: ARRAY1_SIZE as the victim declares it.
ARRAY1_SIZE = 16


def build(variant: str = "classic") -> AttackProgram:
    """Construct the Spectre-v1 PoC program."""
    if variant != "classic":
        raise ValueError(f"unknown spectre-v1 variant {variant!r}")
    b = ProgramBuilder()
    oob_index = SECRET_BASE - ARRAY1_BASE

    # Data layout.
    b.bytes_segment("array1", ARRAY1_BASE,
                    bytes([TRAIN_VALUE] * ARRAY1_SIZE), tag=TAG_PUBLIC)
    plant_secret(b, SECRET_VALUE)
    make_probe_array(b)
    b.words_segment("size_a", SIZE_CELL_A, [ARRAY1_SIZE])
    b.words_segment("size_b", SIZE_CELL_B, [ARRAY1_SIZE])
    iters = TRAIN_ITERS + 1
    indices = [1 + (i % 3) for i in range(TRAIN_ITERS)] + [oob_index]
    size_ptrs = [SIZE_CELL_A] * TRAIN_ITERS + [SIZE_CELL_B]
    b.words_segment("idx_table", TABLES_BASE, indices)
    b.words_segment("ptr_table", TABLES_BASE + 0x200, size_ptrs)

    # Victim warm-up: a legitimate (key-matching) access caches the secret
    # line, so the speculative ACCESS would be an L1 hit.
    b.li("X20", with_key(SECRET_BASE, TAG_SECRET), note="victim pointer")
    b.ldrb("X21", "X20", note="victim legitimately touches its secret")

    # Attacker state.
    b.li("X2", with_key(ARRAY1_BASE, TAG_PUBLIC), note="ARRAY1 (public tag)")
    b.li("X3", PROBE_BASE, note="ARRAY2 / probe")
    b.li("X22", TABLES_BASE)
    b.li("X23", TABLES_BASE + 0x200)
    b.li("X25", 0, note="iteration counter")

    b.label("loop")
    b.lsl("X24", "X25", imm=3)
    b.ldr("X0", "X22", rm="X24", note="index for this run")
    b.ldr("X10", "X23", rm="X24", note="which ARRAY1_SIZE cell to read")
    b.bl("gadget")
    b.add("X25", "X25", imm=1)
    b.cmp("X25", imm=iters)
    b.b_cond("LO", "loop")
    b.halt()

    # Listing 1's victim gadget.
    b.label("gadget")
    b.ldr("X1", "X10", note="LDR X1, [ARRAY1_SIZE]")
    b.cmp("X0", "X1", note="X < ARRAY1_SIZE")
    b.b_cond("HS", "skip", note="mistrained branch")
    b.ldrb("X5", "X2", rm="X0", note="ACCESS: load ARRAY1[X]")
    emit_transmit(b, "X5", "X3")
    b.label("skip")
    b.ret()

    return AttackProgram(
        name="spectre-v1", variant=variant,
        builder_program=b.build(),
        secret_value=SECRET_VALUE, secret_address=SECRET_BASE,
        benign_values=[TRAIN_VALUE],
        description="bounds-check bypass via PHT mistraining (Listing 1)")
