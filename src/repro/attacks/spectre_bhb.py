"""Spectre-BHB (Branch History Injection).

Unlike classic v2, the attacker never trains the victim's branch directly:
it trains a *different* indirect branch whose (PC, history)-hashed BTB index
collides with the victim's.  The collision is engineered exactly as the BHI
papers describe: the BTB index is ``(pc >> 2) ^ (history << 3)``, so two
branches whose PCs differ by 32 collide when their 8-bit global histories
differ only in the lowest outcome bit.  The attacker steers the history with
a run of conditional branches before each indirect jump.

The PoC runs two interleaved rounds: round one warms the history-steering
branches' predictors (a cold run would burn the speculation window on their
mispredict cascade) and inevitably re-trains the aliased slot when the
victim branch resolves; the attacker therefore re-injects before round two,
which executes with clean history, a still-cold target cell, and a wide
window.

The two tag variants mirror Spectre-v2's (SpecASan alone is partial, any
CFI-enforcing defense refuses the non-landing-pad target).
"""

from __future__ import annotations

import struct

from repro.attacks.common import (
    ARRAY1_BASE,
    AttackProgram,
    emit_transmit,
    make_probe_array,
    plant_secret,
    PROBE_BASE,
    SECRET_BASE,
    slow_cell_segment,
    SLOW_CELLS,
    TAG_PUBLIC,
    TAG_SECRET,
)
from repro.isa.builder import ProgramBuilder
from repro.mte.tags import with_key

SECRET_VALUE = 11
TRAIN_ITERS = 4
ROUNDS = 2

VARIANTS = ("mismatched-tag", "matched-tag")


def _force_history(b: ProgramBuilder, bits: int, width: int = 8) -> None:
    """Emit ``width`` conditional branches whose outcomes spell ``bits``
    (MSB first), pinning the global history register."""
    b.cmp("XZR", imm=0, note="Z=1 for the history-steering branches")
    for position in range(width - 1, -1, -1):
        label = b.fresh_label("h")
        taken = bool(bits & (1 << position))
        # With Z set: B.EQ is always taken, B.NE never.
        b.b_cond("EQ" if taken else "NE", label)
        b.label(label)


def build(variant: str = "mismatched-tag") -> AttackProgram:
    """Construct the Spectre-BHB PoC for ``variant``."""
    if variant not in VARIANTS:
        raise ValueError(f"unknown spectre-bhb variant {variant!r}")
    key = TAG_PUBLIC if variant == "mismatched-tag" else TAG_SECRET
    b = ProgramBuilder()

    b.bytes_segment("array1", ARRAY1_BASE, bytes([1] * 16), tag=TAG_PUBLIC)
    plant_secret(b, SECRET_VALUE)
    make_probe_array(b)
    # One cold benign-target cell per round; patched post-link.
    slow_cell_segment(b, count=ROUNDS + 1, values=[0] * (ROUNDS + 1))

    b.li("X20", with_key(SECRET_BASE, TAG_SECRET))
    b.ldrb("X21", "X20", note="victim warms its secret line")
    b.sb(note="wait for the warm-up fill")

    b.li("X3", PROBE_BASE)
    b.li("X4", with_key(ARRAY1_BASE, TAG_PUBLIC), note="train-time data ptr")
    b.li("X19", 0, note="round counter")

    b.label("round")
    # ---- attacker (re-)injects: own indirect branch, history 0b11111111 --
    b.li("X25", 0, note="training counter")
    b.label("train_loop")
    train_li = b.li("X9", 0, note="patched to gadget address post-link")
    _force_history(b, 0b11111111)
    b.pad_to((b.current_address() + 63) & ~63)
    train_blr_addr = b.current_address()
    b.blr("X9", note="attacker-controlled indirect branch")
    b.add("X25", "X25", imm=1)
    b.cmp("X25", imm=TRAIN_ITERS)
    b.b_cond("LO", "train_loop")
    b.b("victim_prep")
    # ---- the victim's indirect branch, 32 bytes past the attacker's ------
    b.pad_to(train_blr_addr + 32)
    b.label("victim_blr")
    b.blr("X9", note="victim indirect branch (aliased BTB slot)")
    b.b("after_victim")

    b.label("victim_prep")
    b.li("X4", with_key(SECRET_BASE, key), note="gadget now sees the secret")
    b.lsl("X24", "X19", imm=12)
    b.li("X15", SLOW_CELLS)
    b.add("X15", "X15", "X24", note="fresh cold cell each round")
    b.ldr("X9", "X15", note="victim target arrives late (cold cell)")
    _force_history(b, 0b11111110)
    b.b("victim_blr")

    b.label("after_victim")
    b.li("X4", with_key(ARRAY1_BASE, TAG_PUBLIC), note="back to public data")
    b.add("X19", "X19", imm=1)
    b.cmp("X19", imm=ROUNDS)
    b.b_cond("LO", "round")
    b.halt()

    b.label("gadget")  # NOT a landing pad
    b.ldrb("X5", "X4", note="ACCESS")
    emit_transmit(b, "X5", "X3")
    b.ret()

    b.label("benign")
    b.bti()
    b.ret()

    program = b.build()
    gadget = program.address_of("gadget")
    benign = program.address_of("benign")
    train_li.imm = gadget
    for segment in program.data_segments:
        if segment.name == "slow_cells":
            data = bytearray(segment.data)
            for round_index in range(ROUNDS):
                offset = round_index * 4096
                data[offset:offset + 8] = struct.pack("<Q", benign)
            segment.data = bytes(data)
            break

    return AttackProgram(
        name="spectre-bhb", variant=variant,
        builder_program=program,
        secret_value=SECRET_VALUE, secret_address=SECRET_BASE,
        benign_values=[1],
        description="branch history injection: aliased-history BTB collision")
