"""Shared process-pool core: one abstraction under campaigns and the service.

The campaign scheduler (batch sweeps) and :mod:`repro.service` (the
always-on spec-lint front end) supervise the same kind of unit: a worker
subprocess that writes a heartbeat file from inside its work loop and an
outcome JSON on exit.  This module is the machinery both share:

- :func:`worker_env` / :func:`launch` — spawn a worker with the repro
  source tree importable and its output captured to a log file;
- :class:`WorkerProcess` — one supervised subprocess: non-blocking exit
  polling, heartbeat-staleness and wall-budget liveness checks, and
  terminate-then-kill reaping;
- :func:`read_outcome` / :func:`classify_exit` — the outcome-file contract
  (``status: ok | failed | crashed``) folded with the exit code into one
  :class:`WorkerExit` classification;
- :class:`AdaptiveWait` — the poll pacing used by both supervision loops:
  tight while workers are active, exponential backoff capped while idle,
  so an always-on service does not burn CPU between requests.

The scheduler drives these primitives from its synchronous poll loop; the
service supervisor drives the same primitives from asyncio (``Popen.poll``
and the liveness checks are non-blocking, so they compose with either).
"""

from __future__ import annotations

import json
import os
import subprocess
import time
from dataclasses import dataclass
from typing import List, Optional

import repro
from repro.campaign.heartbeat import age_s

#: Worker exit code for a typed, retryable failure (see campaign.worker).
EXIT_TYPED_FAILURE = 3

#: Liveness-failure kinds reported by :meth:`WorkerProcess.liveness_failure`.
WALL_TIMEOUT = "wall-timeout"
STALLED = "stalled"


def worker_env() -> dict:
    """Child env with the repro source tree importable."""
    env = dict(os.environ)
    src = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (src if not existing
                         else src + os.pathsep + existing)
    return env


def read_outcome(path: str) -> Optional[dict]:
    """The worker's outcome JSON, or ``None`` if absent/unparseable."""
    try:
        with open(path, encoding="utf-8") as handle:
            return json.load(handle)
    except (OSError, json.JSONDecodeError):
        return None


def log_tail(path: str, limit: int = 400) -> str:
    """The last ``limit`` characters of a worker log (diagnostics)."""
    try:
        with open(path, encoding="utf-8") as handle:
            return handle.read()[-limit:].strip()
    except OSError:
        return ""


@dataclass
class WorkerExit:
    """One classified worker exit.

    ``kind`` is ``"ok"`` (outcome present, status ok, exit 0), ``"typed"``
    (a typed, possibly-retryable failure the worker reported), or
    ``"crashed"`` / ``"killed"`` (the worker died: harness bug, signal,
    OOM kill — environmental, retried under the same seed).
    """

    kind: str
    error: str = ""
    error_type: str = ""
    outcome: Optional[dict] = None


def classify_exit(returncode: int, outcome: Optional[dict],
                  tail: str = "") -> WorkerExit:
    """Fold the exit code and outcome file into one classification."""
    if returncode == 0 and outcome is not None \
            and outcome.get("status") == "ok":
        return WorkerExit("ok", outcome=outcome)
    if outcome is not None and outcome.get("status") == "failed":
        return WorkerExit("typed", outcome.get("error", ""),
                          outcome.get("error_type", ""), outcome)
    if outcome is not None and outcome.get("status") == "crashed":
        return WorkerExit("crashed", outcome.get("error", ""),
                          outcome.get("error_type", ""), outcome)
    if returncode < 0:
        return WorkerExit("killed", f"worker died to signal {-returncode}")
    return WorkerExit(
        "crashed",
        f"exit code {returncode} with no outcome file"
        + (f"; log tail: {tail}" if tail else ""))


class WorkerProcess:
    """One supervised worker subprocess and its liveness contract.

    The worker promises to pulse ``heartbeat_path`` from inside its work
    loop and to write ``out_path`` atomically before exiting.  The
    supervisor polls :meth:`exit` (non-blocking) and
    :meth:`liveness_failure`; a worker that exceeds its wall budget or
    goes heartbeat-silent is :meth:`reaped <reap>`.
    """

    def __init__(self, proc: subprocess.Popen, *, out_path: str,
                 heartbeat_path: str, log_path: str = "",
                 timeout_s: float = float("inf"),
                 stall_timeout_s: float = float("inf")):
        self.proc = proc
        self.out_path = out_path
        self.heartbeat_path = heartbeat_path
        self.log_path = log_path
        self.timeout_s = timeout_s
        self.stall_timeout_s = stall_timeout_s
        self.started = time.monotonic()

    @property
    def pid(self) -> int:
        return self.proc.pid

    def elapsed(self, now: Optional[float] = None) -> float:
        return (now if now is not None else time.monotonic()) - self.started

    def exit(self) -> Optional[WorkerExit]:
        """Classified exit if the process has finished, else ``None``."""
        returncode = self.proc.poll()
        if returncode is None:
            return None
        return classify_exit(returncode, read_outcome(self.out_path),
                             log_tail(self.log_path) if self.log_path else "")

    def liveness_failure(self,
                         now: Optional[float] = None) -> Optional[WorkerExit]:
        """Wall-budget / heartbeat-staleness check for a *running* worker.

        Returns a :class:`WorkerExit` of kind :data:`WALL_TIMEOUT` or
        :data:`STALLED` when the worker must be reaped, else ``None``.
        A worker that never heartbeats is measured from its start time.
        """
        elapsed = self.elapsed(now)
        if elapsed > self.timeout_s:
            return WorkerExit(WALL_TIMEOUT,
                              f"exceeded {self.timeout_s}s wall budget")
        heartbeat_age = age_s(self.heartbeat_path, now=time.time())
        stale = heartbeat_age if heartbeat_age is not None else elapsed
        if stale > self.stall_timeout_s:
            return WorkerExit(STALLED, f"no heartbeat for {stale:.1f}s "
                                       "(straggler reaped)")
        return None

    def reap(self) -> None:
        """Terminate, escalating to SIGKILL if the worker ignores it."""
        self.proc.terminate()
        try:
            self.proc.wait(timeout=2)
        except subprocess.TimeoutExpired:
            self.proc.kill()
            self.proc.wait()


def launch(argv: List[str], *, out_path: str, heartbeat_path: str,
           log_path: str, timeout_s: float = float("inf"),
           stall_timeout_s: float = float("inf"),
           env: Optional[dict] = None) -> WorkerProcess:
    """Spawn one worker with stdout/stderr captured to ``log_path``."""
    log = open(log_path, "w", encoding="utf-8")
    try:
        proc = subprocess.Popen(argv, stdout=log, stderr=log,
                                env=env if env is not None else worker_env())
    finally:
        log.close()
    return WorkerProcess(proc, out_path=out_path,
                         heartbeat_path=heartbeat_path, log_path=log_path,
                         timeout_s=timeout_s,
                         stall_timeout_s=stall_timeout_s)


class AdaptiveWait:
    """Poll pacing: tight under activity, capped backoff while idle.

    ``interval(active)`` returns the next wait; while ``active`` it is
    always ``base``, and each consecutive idle step doubles the wait up to
    ``cap``.  Any active step resets the backoff, so a pool that goes busy
    again is immediately back on the tight cadence.  :meth:`sleep` is the
    synchronous convenience; asyncio callers await ``interval`` themselves.
    """

    def __init__(self, base: float = 0.02, cap: float = 0.5):
        self.base = base
        self.cap = max(cap, base)
        self._idle_streak = 0

    def interval(self, active: bool) -> float:
        if active:
            self._idle_streak = 0
            return self.base
        delay = min(self.cap, self.base * (2 ** self._idle_streak))
        self._idle_streak += 1
        return delay

    def sleep(self, active: bool) -> None:
        time.sleep(self.interval(active))
