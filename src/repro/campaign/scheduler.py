"""Fault-tolerant campaign scheduler.

Drives a sweep's cells through isolated worker subprocesses with:

- **crash isolation** — a worker dying (segfault, OOM kill, SIGKILL) costs
  one attempt of one cell;
- **wall-clock timeouts** — a cell that overruns its ``timeout_s`` is
  killed and retried;
- **straggler recovery** — workers heartbeat from inside the simulation
  loop (simulated-cycle progress); a heartbeat stale past
  ``stall_timeout_s`` marks the worker hung, and it is reaped and
  rescheduled — the campaign-level analogue of the per-run
  :class:`repro.resilience.watchdog.Watchdog`;
- **retry with exponential backoff + jitter and reseeding** — attempt *k*
  waits ``backoff_base_s * 2**(k-1)`` (+ seeded jitter) and perturbs the
  MTE tag seed, generalizing ``run_resilient`` across process boundaries;
- **durable progress** — every completed cell is appended to the
  :class:`~repro.campaign.store.ResultStore` before anything else happens,
  so ``--resume`` skips exactly the work that already landed;
- **graceful degradation** — a cell that exhausts its retries becomes an
  explicit missing-cell marker in the rendered figure plus an entry in the
  structured failure report; it never aborts the campaign;
- **graceful interrupt** — SIGTERM/SIGINT mid-campaign reaps the active
  workers, writes ``report.json`` with an ``"interrupted"`` status, and
  leaves the run directory resumable (``--resume`` finishes it).

The process-launch / liveness / exit-classification primitives live in
:mod:`repro.campaign.pool`, shared with the :mod:`repro.service` worker
supervisor — "campaign" and "service queue" are one pool abstraction.
"""

from __future__ import annotations

import json
import os
import random
import signal
import sys
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.campaign import pool
from repro.campaign.cells import (CampaignConfig, CellSpec, rows_from_records)
from repro.campaign.pool import AdaptiveWait, WorkerExit, WorkerProcess
from repro.campaign.store import CorruptRecord, ResultStore, atomic_write
from repro.config import DefenseKind
from repro.eval.experiments import ExperimentRow, render_rows
from repro.telemetry.obs import (SPAN_CHECKPOINT_RESTORE, FlightRecorder,
                                 SpanRecorder, new_trace_id)
from repro.telemetry.prometheus import render_prometheus
from repro.telemetry.registry import StatsRegistry

#: Span log + flight-recorder dump + metrics snapshots in the run dir.
SPANS_LOG = "spans.jsonl"
FLIGHT_DUMP = "flight-recorder.json"
METRICS_JSON = "metrics.json"
METRICS_PROM = "metrics.prom"

#: Worker-reported phase -> span name for cell-attempt child spans.
_PHASE_SPANS = (("generate_ms", "workload-generate"),
                ("restore_ms", SPAN_CHECKPOINT_RESTORE),
                ("warm_ms", "warm-up"),
                ("run_ms", "simulate"),
                ("synthesize_ms", "witness-synthesize"),
                ("plan_ms", "repair-plan"),
                ("measure_ms", "repair-measure"))

#: Backwards-compatible alias (the CLI and older tests import it from here).
_worker_env = pool.worker_env


@dataclass
class AttemptFailure:
    """One failed attempt of one cell."""

    attempt: int
    #: "typed" (retryable ReproError), "crashed" (worker bug/exception),
    #: "killed" (died to a signal), "wall-timeout", "stalled".
    kind: str
    error: str = ""
    error_type: str = ""

    def to_dict(self) -> dict:
        return {"attempt": self.attempt, "kind": self.kind,
                "error": self.error, "error_type": self.error_type}


@dataclass
class _PendingCell:
    cell: CellSpec
    attempts: int = 0
    #: MTE tag-seed perturbation for the next attempt.  Bumped only on
    #: *typed* simulation failures (the deterministic kind reseeding can
    #: dodge); environmental deaths — kill, OOM, wall-timeout, stall —
    #: retry under the same seed so the previous attempt's mid-cell
    #: checkpoints stay restorable and the retry resumes instead of
    #: restarting from cycle 0.
    reseed: int = 0
    eligible_at: float = 0.0
    failures: List[AttemptFailure] = field(default_factory=list)


@dataclass
class _ActiveWorker:
    cell: CellSpec
    state: _PendingCell
    worker: WorkerProcess
    started_at: float = field(default_factory=time.monotonic)


@dataclass
class CampaignOutcome:
    """Everything a caller needs after a campaign finishes."""

    config: CampaignConfig
    cells: List[CellSpec]
    completed: Dict[str, dict]
    failed: Dict[str, List[AttemptFailure]]
    corrupt: List[CorruptRecord]
    #: Cells found already done in the store (the resume fast path).
    skipped: int = 0
    #: The campaign was stopped by SIGTERM/SIGINT before finishing; the
    #: run directory stays resumable (completed cells are durable, active
    #: workers were reaped, nothing was marked failed).
    interrupted: bool = False

    @property
    def ok(self) -> bool:
        return not self.failed and not self.corrupt and not self.interrupted

    @property
    def rows(self) -> List[ExperimentRow]:
        return rows_from_records(self.cells, self.completed)

    def render(self, metric: str = "normalized") -> str:
        """The figure, with explicit markers for any missing cells."""
        # Repair cells are self-normalizing (the unrepaired program is the
        # baseline), so there is no NONE column to expect.
        baseline = [] if self.config.kind == "repair" \
            else [DefenseKind.NONE]
        return render_rows(self.rows, metric,
                           benchmarks=self.config.suite(),
                           defenses=baseline + self.config.defenses)

    @property
    def degradations(self) -> Dict[str, List[dict]]:
        """Checkpoint corruptions each completed cell degraded past.

        Keyed by cell id; each entry names the stage (``warm`` — shared
        warm checkpoint, ``resume`` — per-cell generation) and the
        :class:`~repro.errors.CheckpointError` fault class.  Degradations
        cost re-simulation time, never results, so they are reported but
        do not affect :attr:`ok`.
        """
        return {
            cell_id: record["row"]["degradations"]
            for cell_id, record in sorted(self.completed.items())
            if record.get("row", {}).get("degradations")
        }

    def report(self) -> dict:
        """Structured failure report (persisted as ``report.json``)."""
        return {
            "figure": self.config.figure,
            "config_hash": self.config.config_hash(),
            "status": "interrupted" if self.interrupted else "finished",
            "total_cells": len(self.cells),
            "completed": len(self.completed),
            "skipped_already_done": self.skipped,
            "failed": {cell_id: [f.to_dict() for f in failures]
                       for cell_id, failures in self.failed.items()},
            "corrupt_records": [
                {"line_no": c.line_no, "reason": c.reason,
                 "cell_id": c.cell_id} for c in self.corrupt],
            "degradations": self.degradations,
            "resumable": self.interrupted,
            "ok": self.ok,
        }


class CampaignScheduler:
    """Runs one campaign's cells to completion (or explicit failure).

    ``worker_argv`` overrides how a worker process is launched — the test
    hook for simulating hung or crashing workers without patching the real
    simulator.
    """

    def __init__(self, config: CampaignConfig, run_dir: str, *,
                 progress: Optional[Callable[[str], None]] = None,
                 worker_argv: Optional[Callable[..., List[str]]] = None,
                 poll_interval_s: float = 0.02,
                 metrics_interval_s: float = 5.0):
        self.config = config
        self.run_dir = run_dir
        self.store = ResultStore(run_dir)
        self.progress = progress or (lambda message: None)
        self.worker_argv = worker_argv
        self.poll_interval_s = poll_interval_s
        self.metrics_interval_s = metrics_interval_s
        self._interrupted = False
        # Jitter must be deterministic per campaign seed so two runs of the
        # same config retry on the same schedule (results never depend on
        # jitter, only latency does).
        self._rng = random.Random(config.seed ^ 0x5EED_CA3B)
        # Observability: one trace ID per cell (stable across attempts),
        # cell-attempt spans in the run dir, a flight recorder mirrored
        # into the campaign.* metrics scope dumped periodically.
        self.flight = FlightRecorder()
        self.spans = SpanRecorder(os.path.join(run_dir, SPANS_LOG),
                                  flight=self.flight)
        self._traces: Dict[str, str] = {}
        self.registry = StatsRegistry()
        scope = self.registry.scope("campaign")
        self._m_launched = scope.scalar(
            "attempts_launched", "worker attempts started")
        self._m_completed = scope.scalar(
            "cells_completed", "cells measured to a durable row")
        self._m_retried = scope.scalar(
            "attempts_retried", "failed attempts that were rescheduled")
        self._m_failed = scope.scalar(
            "cells_failed", "cells failed permanently (retries exhausted)")
        self._m_cell_ms = scope.latency(
            "cell_latency_ms", "wall latency of successful cell attempts")
        self._metrics_dumped_at = 0.0

    # ------------------------------------------------------------------
    # launch plumbing
    # ------------------------------------------------------------------

    def _paths(self, cell: CellSpec, attempt: int) -> dict:
        # Repair-cell benchmarks are witness subjects ("pht/same-key"):
        # flatten the separator too, or the stem nests a directory.
        safe = cell.cell_id.replace(":", "_").replace("+", "") \
            .replace("/", "-")
        stem = os.path.join(self.store.work_dir, f"{safe}.a{attempt}")
        return {"spec": stem + ".cell.json", "out": stem + ".out.json",
                "heartbeat": stem + ".hb", "log": stem + ".log",
                # Checkpoint stem is attempt-INdependent: a retry must find
                # the generations the dead attempt left behind, and a
                # ``--resume`` of the whole campaign picks a killed cell
                # back up mid-run the same way.
                "ckpt": os.path.join(self.store.work_dir, safe)}

    def _default_argv(self, cell: CellSpec, paths: dict, attempt: int,
                      reseed: int) -> List[str]:
        argv = [sys.executable, "-m", "repro.campaign.worker",
                "--spec", paths["spec"], "--out", paths["out"],
                "--heartbeat", paths["heartbeat"],
                "--attempt", str(attempt), "--reseed", str(reseed),
                "--heartbeat-cycles", str(self.config.heartbeat_cycles)]
        if self.config.checkpoint_interval > 0:
            argv += ["--checkpoint-stem", paths["ckpt"],
                     "--checkpoint-interval",
                     str(self.config.checkpoint_interval),
                     "--checkpoint-keep", str(self.config.checkpoint_keep)]
        if self.config.share_warm:
            argv += ["--warm-dir", self.store.work_dir]
        trace = self._traces.get(cell.cell_id, "")
        if trace:
            argv += ["--trace-id", trace]
        return argv

    def _trace_of(self, cell: CellSpec) -> str:
        """The cell's trace ID — minted once, stable across retries."""
        return self._traces.setdefault(cell.cell_id, new_trace_id())

    def _launch(self, state: _PendingCell) -> _ActiveWorker:
        cell, attempt = state.cell, state.attempts
        reseed = state.reseed  # bumped per *typed* failure, not per attempt
        trace = self._trace_of(cell)
        paths = self._paths(cell, attempt)
        with open(paths["spec"], "w", encoding="utf-8") as handle:
            json.dump(cell.to_dict(), handle)
        for stale in ("out", "heartbeat"):
            try:
                os.unlink(paths[stale])
            except OSError:
                pass
        argv_factory = self.worker_argv or self._default_argv
        argv = argv_factory(cell, paths, attempt, reseed)
        worker = pool.launch(argv, out_path=paths["out"],
                             heartbeat_path=paths["heartbeat"],
                             log_path=paths["log"],
                             timeout_s=cell.timeout_s,
                             stall_timeout_s=self.config.stall_timeout_s)
        self._m_launched.inc()
        self.flight.record("cell-launch", trace=trace, cell=cell.cell_id,
                           attempt=attempt, pid=worker.pid)
        self.progress(f"cell {cell.cell_id}: attempt {attempt} started "
                      f"(pid {worker.pid}, reseed {reseed})")
        return _ActiveWorker(cell=cell, state=state, worker=worker)

    # ------------------------------------------------------------------
    # outcome handling
    # ------------------------------------------------------------------

    def _record_success(self, worker: _ActiveWorker, outcome: dict) -> None:
        trace = self._trace_of(worker.cell)
        self.store.append({
            "cell_id": worker.cell.cell_id,
            "status": "ok",
            "attempt": worker.state.attempts,
            "reseed": outcome.get("reseed", worker.state.reseed),
            "trace": trace,
            "cell": worker.cell.to_dict(),
            "row": outcome["row"],
        })
        self._m_completed.inc()
        self._m_cell_ms.observe(
            (time.monotonic() - worker.started_at) * 1000.0)
        row = outcome["row"]
        timings = outcome.get("timings", {})
        t0 = self.spans.at(worker.started_at)
        root = self.spans.record(
            trace, "cell-attempt", t0_ms=t0,
            dur_ms=self.spans.now() - t0, cell=worker.cell.cell_id,
            attempt=worker.state.attempts)
        cursor = t0
        for key, name in _PHASE_SPANS:
            phase_ms = float(timings.get(key, 0.0))
            if phase_ms <= 0.0:
                continue
            self.spans.record(trace, name, parent_id=root.span_id,
                              t0_ms=cursor, dur_ms=phase_ms)
            cursor += phase_ms
        notes = ""
        if row.get("resumed_cycle") is not None:
            notes += f", resumed from cycle {row['resumed_cycle']}"
        if row.get("degradations"):
            kinds = sorted({d["kind"] for d in row["degradations"]})
            notes += f", degraded past {'/'.join(kinds)}"
        self.progress(f"cell {worker.cell.cell_id}: ok "
                      f"({row['cycles']} cycles, "
                      f"attempt {worker.state.attempts}{notes})")

    @staticmethod
    def _as_failure(worker: _ActiveWorker, exit: WorkerExit) -> AttemptFailure:
        return AttemptFailure(worker.state.attempts, exit.kind,
                              exit.error, exit.error_type)

    def _handle_failure(self, worker: _ActiveWorker,
                        failure: AttemptFailure,
                        pending: List[_PendingCell],
                        failed: Dict[str, List[AttemptFailure]]) -> None:
        state = worker.state
        state.failures.append(failure)
        state.attempts += 1
        trace = self._trace_of(worker.cell)
        t0 = self.spans.at(worker.started_at)
        self.spans.record(
            trace, "cell-attempt", t0_ms=t0, dur_ms=self.spans.now() - t0,
            status="error", cell=worker.cell.cell_id,
            attempt=failure.attempt, kind=failure.kind)
        self.flight.record("cell-failure", trace=trace,
                           cell=worker.cell.cell_id, kind=failure.kind,
                           attempt=failure.attempt)
        if failure.kind == "typed":
            # Deterministic simulation failure: perturb the MTE seed (the
            # run_resilient convention).  The old checkpoints are now
            # config-skewed and the worker starts the cell over; for every
            # other failure kind the seed is kept so the retry restores the
            # dead attempt's newest generation and continues mid-cell.
            state.reseed += 1
        cell_id = worker.cell.cell_id
        if state.attempts > self.config.max_retries:
            failed[cell_id] = state.failures
            self._m_failed.inc()
            # Durable trace of the exhausted cell: resume retries it, and
            # the retry history survives for the failure report.
            self.store.append({
                "cell_id": cell_id, "status": "failed", "trace": trace,
                "cell": worker.cell.to_dict(),
                "failures": [f.to_dict() for f in state.failures],
            })
            self.progress(
                f"cell {cell_id}: FAILED permanently after "
                f"{state.attempts} attempts ({failure.kind}: "
                f"{failure.error})")
            return
        self._m_retried.inc()
        delay = (self.config.backoff_base_s * (2 ** (state.attempts - 1))
                 + self._rng.uniform(0, self.config.backoff_jitter_s))
        state.eligible_at = time.monotonic() + delay
        pending.append(state)
        self.progress(f"cell {cell_id}: attempt {failure.attempt} "
                      f"{failure.kind} ({failure.error}); retrying in "
                      f"{delay:.2f}s with reseed {state.reseed}")

    # ------------------------------------------------------------------
    # the main loop
    # ------------------------------------------------------------------

    def run(self, resume: bool = False) -> CampaignOutcome:
        cells = self.config.build_cells()
        if os.path.exists(self.store.manifest_path):
            # An existing manifest must belong to this campaign; matching
            # hash makes a plain re-run naturally resume-shaped.
            self.store.resume_config(expected=self.config)
            resume = True
        elif resume:
            self.store.load_manifest()  # raises the not-a-run-dir error
        else:
            self.store.initialize(self.config, cells)
        os.makedirs(self.store.work_dir, exist_ok=True)

        completed, corrupt = self.store.completed(
            [cell.cell_id for cell in cells])
        for record in corrupt:
            self.progress(f"store: corrupt record ignored, cell re-queued "
                          f"({record})")
        skipped = len(completed)
        if resume and skipped:
            self.progress(f"resume: {skipped}/{len(cells)} cells already "
                          "done, skipping")

        pending = [_PendingCell(cell) for cell in cells
                   if cell.cell_id not in completed]
        active: List[_ActiveWorker] = []
        failed: Dict[str, List[AttemptFailure]] = {}
        # Poll pacing: tight while workers run, capped backoff while every
        # pending cell is waiting out its retry delay (nothing to observe).
        wait = AdaptiveWait(base=self.poll_interval_s,
                            cap=max(self.poll_interval_s, 0.25))

        with self._signal_scope():
            while (pending or active) and not self._interrupted:
                now = time.monotonic()
                # Launch every eligible cell while worker slots are free.
                launchable = [s for s in pending if s.eligible_at <= now]
                while launchable and len(active) < self.config.max_workers:
                    state = launchable.pop(0)
                    pending.remove(state)
                    active.append(self._launch(state))

                still_active: List[_ActiveWorker] = []
                for worker in active:
                    exit = worker.worker.exit()
                    if exit is None:
                        exit = worker.worker.liveness_failure(now)
                        if exit is not None:
                            worker.worker.reap()
                    if exit is None:
                        still_active.append(worker)
                    elif exit.kind == "ok":
                        self._record_success(worker, exit.outcome)
                        completed[worker.cell.cell_id] = {
                            "cell_id": worker.cell.cell_id,
                            "row": exit.outcome["row"]}
                    else:
                        self._handle_failure(worker,
                                             self._as_failure(worker, exit),
                                             pending, failed)
                active = still_active
                if now - self._metrics_dumped_at >= self.metrics_interval_s:
                    self.dump_metrics()
                    self._metrics_dumped_at = now
                if pending or active:
                    wait.sleep(active=bool(active))

        if self._interrupted and active:
            # Reap, don't strand: the workers die now, their cells stay
            # unrecorded (= pending), and --resume picks them back up —
            # mid-cell where checkpoints exist.
            self.progress(f"interrupt: reaping {len(active)} active "
                          "worker(s); run directory stays resumable")
            for worker in active:
                worker.worker.reap()

        outcome = CampaignOutcome(config=self.config, cells=cells,
                                  completed=completed, failed=failed,
                                  corrupt=corrupt, skipped=skipped,
                                  interrupted=self._interrupted)
        self.store.write_report(outcome.report())
        self.dump_metrics()
        atomic_write(os.path.join(self.run_dir, FLIGHT_DUMP),
                     json.dumps(self.flight.dump(), indent=2,
                                sort_keys=True))
        self.spans.close()
        return outcome

    def dump_metrics(self) -> None:
        """Snapshot the ``campaign.*`` registry into the run dir, both as
        a JSON dump and as Prometheus text exposition."""
        atomic_write(os.path.join(self.run_dir, METRICS_JSON),
                     json.dumps(self.registry.dump(), indent=2,
                                sort_keys=True))
        atomic_write(os.path.join(self.run_dir, METRICS_PROM),
                     render_prometheus(self.registry))

    # ------------------------------------------------------------------
    # graceful interrupt
    # ------------------------------------------------------------------

    def interrupt(self) -> None:
        """Request a graceful stop (signal-handler and test entry point)."""
        self._interrupted = True

    def _signal_scope(self):
        """Install SIGTERM/SIGINT -> :meth:`interrupt` around the run loop.

        Only the main thread may install signal handlers; elsewhere (tests
        driving the scheduler from a thread, embedding services) the scope
        is a no-op and :meth:`interrupt` is called directly.
        """
        import contextlib

        @contextlib.contextmanager
        def scope():
            if threading.current_thread() is not threading.main_thread():
                yield
                return
            previous = {}
            handled = (signal.SIGTERM, signal.SIGINT)

            def handler(signum, frame):
                self.progress(f"received signal {signum}; finishing poll "
                              "and stopping gracefully")
                self.interrupt()

            for sig in handled:
                previous[sig] = signal.signal(sig, handler)
            try:
                yield
            finally:
                for sig, old in previous.items():
                    signal.signal(sig, old)

        return scope()
