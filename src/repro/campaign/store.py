"""Durable, resumable result store for experiment campaigns.

Layout of one run directory::

    run-dir/
      manifest.json     # config hash, seed, schema version, cell ids
      results.jsonl     # append-only records, one JSON object per line
      work/             # per-attempt scratch: cell specs, outputs, heartbeats
      report.json       # structured failure report (written at campaign end)

Durability story:

- **Atomic writes** — every mutation rewrites the target through a
  same-directory temp file and ``os.replace`` (fsync'd first), so a crash —
  even SIGKILL mid-write — leaves either the old file or the new file, never
  an interleaving.  For ``results.jsonl`` the replace carries the existing
  records plus the appended line.
- **Per-record checksums** — each record embeds the SHA-256 of its own
  canonical JSON.  ``load()`` recomputes it; a truncated tail, a flipped
  byte, or a half-merged line fails closed: the record is *reported* as
  corrupt and its cell re-queued, never silently trusted.
- **Schema versioning** — records and manifest carry ``schema``; a store
  written by an incompatible version re-runs those cells rather than
  misinterpreting them.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.campaign.cells import SCHEMA_VERSION, CampaignConfig, CellSpec
from repro.errors import CampaignError, ManifestMismatch, ResultCorruption

_CHECKSUM_FIELD = "sha256"


def _canonical(record: dict) -> str:
    return json.dumps(record, sort_keys=True, separators=(",", ":"))


def checksum(record: dict) -> str:
    """SHA-256 over the record's canonical JSON (checksum field excluded)."""
    body = {k: v for k, v in record.items() if k != _CHECKSUM_FIELD}
    return hashlib.sha256(_canonical(body).encode("utf-8")).hexdigest()


def atomic_write(path: str, data: str) -> None:
    """Write ``data`` to ``path`` via same-directory tmp + ``os.replace``."""
    directory = os.path.dirname(path) or "."
    fd, tmp = tempfile.mkstemp(dir=directory,
                               prefix=os.path.basename(path) + ".",
                               suffix=".tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


@dataclass
class CorruptRecord:
    """One rejected ``results.jsonl`` line."""

    line_no: int
    reason: str
    #: The cell the record claimed to belong to, when that much was legible.
    cell_id: str = ""

    def __str__(self) -> str:  # pragma: no cover - convenience
        where = f" (cell {self.cell_id})" if self.cell_id else ""
        return f"line {self.line_no}: {self.reason}{where}"


class ResultStore:
    """Append-only JSONL store with checksums, bound to one run directory."""

    MANIFEST = "manifest.json"
    RESULTS = "results.jsonl"
    WORK = "work"
    REPORT = "report.json"

    def __init__(self, run_dir: str):
        self.run_dir = run_dir
        self.results_path = os.path.join(run_dir, self.RESULTS)
        self.manifest_path = os.path.join(run_dir, self.MANIFEST)
        self.report_path = os.path.join(run_dir, self.REPORT)
        self.work_dir = os.path.join(run_dir, self.WORK)

    # ------------------------------------------------------------------
    # manifest
    # ------------------------------------------------------------------

    def initialize(self, config: CampaignConfig,
                   cells: Sequence[CellSpec]) -> None:
        """Create the run directory and write its manifest."""
        os.makedirs(self.work_dir, exist_ok=True)
        manifest = {
            "schema": SCHEMA_VERSION,
            "config_hash": config.config_hash(),
            "config": config.to_dict(),
            "seed": config.seed,
            "cells": [cell.cell_id for cell in cells],
        }
        atomic_write(self.manifest_path, json.dumps(manifest, indent=2))

    def load_manifest(self) -> dict:
        if not os.path.exists(self.manifest_path):
            raise CampaignError(
                f"{self.run_dir}: no manifest.json — not a campaign run "
                "directory (or its creation was interrupted before the "
                "first atomic manifest write)")
        with open(self.manifest_path, encoding="utf-8") as handle:
            manifest = json.load(handle)
        if manifest.get("schema") != SCHEMA_VERSION:
            raise CampaignError(
                f"{self.run_dir}: manifest schema "
                f"{manifest.get('schema')!r} != supported {SCHEMA_VERSION}")
        return manifest

    def resume_config(self,
                      expected: Optional[CampaignConfig] = None
                      ) -> CampaignConfig:
        """Reload the manifest's config, verifying the hash.

        With ``expected`` the caller supplies its own config, and a hash
        mismatch (changed parameters against an old run directory) is
        fail-stop: :class:`~repro.errors.ManifestMismatch`.
        """
        manifest = self.load_manifest()
        config = CampaignConfig.from_dict(manifest["config"])
        recorded = manifest["config_hash"]
        if config.config_hash() != recorded:
            raise ManifestMismatch(recorded, config.config_hash(),
                                   "manifest hash does not match its own "
                                   "config — manifest edited by hand?")
        if expected is not None and expected.config_hash() != recorded:
            raise ManifestMismatch(recorded, expected.config_hash())
        return config

    # ------------------------------------------------------------------
    # records
    # ------------------------------------------------------------------

    def append(self, record: dict) -> None:
        """Durably append one record (checksum added here).

        The whole file is rewritten through ``atomic_write``: O(n) per
        append, trivially atomic, and campaign stores are dozens-of-cells
        small.  A crash mid-append leaves the previous intact store.
        """
        record = dict(record)
        record.setdefault("schema", SCHEMA_VERSION)
        record[_CHECKSUM_FIELD] = checksum(record)
        existing = ""
        if os.path.exists(self.results_path):
            with open(self.results_path, encoding="utf-8") as handle:
                existing = handle.read()
        if existing and not existing.endswith("\n"):
            existing += "\n"   # heal a torn tail; load() reports the line
        atomic_write(self.results_path,
                     existing + _canonical(record) + "\n")

    def load(self, strict: bool = False
             ) -> Tuple[List[dict], List[CorruptRecord]]:
        """All intact records plus a report of every rejected line.

        ``strict=True`` raises :class:`~repro.errors.ResultCorruption` on
        the first bad line instead of collecting it.
        """
        records: List[dict] = []
        corrupt: List[CorruptRecord] = []
        if not os.path.exists(self.results_path):
            return records, corrupt

        def reject(line_no: int, reason: str, cell_id: str = "") -> None:
            if strict:
                raise ResultCorruption(line_no, reason)
            corrupt.append(CorruptRecord(line_no, reason, cell_id))

        with open(self.results_path, encoding="utf-8") as handle:
            for line_no, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError as exc:
                    reject(line_no, f"unparseable JSON ({exc.msg}) — "
                                    "truncated mid-write?")
                    continue
                if not isinstance(record, dict):
                    reject(line_no, "record is not an object")
                    continue
                cell_id = str(record.get("cell_id", ""))
                stored = record.get(_CHECKSUM_FIELD)
                if stored is None:
                    reject(line_no, "missing checksum", cell_id)
                    continue
                if checksum(record) != stored:
                    reject(line_no, "checksum mismatch — corrupted record",
                           cell_id)
                    continue
                if record.get("schema") != SCHEMA_VERSION:
                    reject(line_no,
                           f"schema {record.get('schema')!r} != "
                           f"{SCHEMA_VERSION} — stale record", cell_id)
                    continue
                records.append(record)
        return records, corrupt

    def completed(self, expected_ids: Sequence[str]
                  ) -> Tuple[Dict[str, dict], List[CorruptRecord]]:
        """Map of cell_id -> latest *ok* record, restricted to this
        campaign's cells; anything corrupt or unknown is left pending."""
        records, corrupt = self.load()
        expected = set(expected_ids)
        done: Dict[str, dict] = {}
        for record in records:
            cell_id = record.get("cell_id")
            if record.get("status") == "ok" and cell_id in expected:
                done[cell_id] = record
        return done, corrupt

    # ------------------------------------------------------------------
    # report
    # ------------------------------------------------------------------

    def write_report(self, report: dict) -> None:
        atomic_write(self.report_path, json.dumps(report, indent=2))
