"""Campaign cell model: the unit of crash-isolated work.

A *cell* is one (experiment kind, benchmark, defense) measurement — exactly
one bar of Figure 6/7/9.  Cells are independent by construction: every cell
regenerates its workload from the same deterministic seed and runs it on a
fresh system, so any subset can run in any order, in any process, and a
resumed campaign produces bit-identical rows to an uninterrupted one.

Normalization couples cells only at *assembly* time: the ``none`` (unsafe
baseline) cell of each benchmark supplies ``baseline_cycles`` for that
benchmark's defense rows, so :func:`rows_from_records` joins records into
:class:`~repro.eval.experiments.ExperimentRow` after the fact.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, replace
from typing import Dict, List, Optional, Sequence

from repro.config import CORTEX_A76, DefenseKind, SystemConfig
from repro.errors import CampaignError
from repro.eval.experiments import (FIG6_DEFENSES, FIG9_DEFENSES,
                                    ExperimentRow)
from repro.workloads import parsec_names, spec_names

#: Bump when the result-record layout changes; stale-schema records in a
#: resumed store are re-run, never trusted.
SCHEMA_VERSION = 1

#: Figure name -> (cell kind, defense list) for the sweep entry points.
FIGURES = {
    "figure6": ("spec", FIG6_DEFENSES),
    "figure7": ("parsec", FIG6_DEFENSES),
    "figure9": ("spec", FIG9_DEFENSES),
    # The spec-repair pipeline's overhead sweep: one cell per residual
    # witness, each self-normalizing (the cell runs the unrepaired program
    # itself), so no NONE baseline cells are scheduled.
    "repair-overhead": ("repair", [DefenseKind.SPECASAN]),
}


@dataclass(frozen=True)
class CellSpec:
    """One (kind, benchmark, defense) measurement, JSON-serializable.

    ``seed`` is the *workload* seed; the scheduler perturbs the MTE tag
    seed on retries (reseed-with-backoff), which never changes the workload
    itself — rows stay comparable across attempts.
    """

    kind: str                    # "spec" | "parsec"
    benchmark: str
    defense: str                 # DefenseKind value
    target_instructions: int = 4000
    warm_runs: int = 1
    num_threads: int = 1         # parsec only
    seed: int = 0
    #: Cycle budget per simulated run (None -> CoreConfig.max_cycles).
    max_cycles: Optional[int] = None
    #: Wall-clock budget for the whole cell (all warm + measured runs).
    timeout_s: float = 300.0

    def __post_init__(self) -> None:
        if self.kind not in ("spec", "parsec", "repair"):
            raise CampaignError(f"unknown cell kind {self.kind!r}")
        DefenseKind(self.defense)  # raises ValueError on a bad value
        if self.timeout_s <= 0:
            raise CampaignError("cell timeout_s must be positive")

    @property
    def cell_id(self) -> str:
        return f"{self.kind}:{self.benchmark}:{self.defense}"

    @property
    def defense_kind(self) -> DefenseKind:
        return DefenseKind(self.defense)

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "CellSpec":
        return cls(**data)


@dataclass(frozen=True)
class CampaignConfig:
    """Everything a campaign needs to (re)build its cell list.

    The config hash pins a run directory to one campaign: ``--resume``
    against a directory whose manifest hash differs is a
    :class:`~repro.errors.ManifestMismatch`, because mixing rows measured
    under different parameters would corrupt the figure silently.
    """

    figure: str = "figure6"
    benchmarks: tuple = ()       # empty -> the figure's full suite
    target_instructions: int = 4000
    warm_runs: int = 1
    num_threads: int = 4         # parsec campaigns
    seed: int = 0
    max_cycles: Optional[int] = None
    timeout_s: float = 300.0
    #: Process-level retries per cell after the first attempt.
    max_retries: int = 2
    #: Exponential-backoff base delay (seconds); attempt k waits
    #: ``backoff_base_s * 2**k`` plus jitter.
    backoff_base_s: float = 0.25
    backoff_jitter_s: float = 0.25
    #: A worker whose heartbeat file goes stale for this long is a straggler.
    stall_timeout_s: float = 60.0
    #: Simulated cycles between heartbeats.
    heartbeat_cycles: int = 2000
    max_workers: int = 2
    #: Simulated cycles between periodic mid-cell checkpoints (0 disables
    #: checkpointing; retries and ``--resume`` then restart cells from
    #: cycle 0, the pre-checkpoint behavior).
    checkpoint_interval: int = 10_000
    #: Checkpoint generations kept per cell (older ones are pruned; restore
    #: walks newest->oldest past corrupt files).
    checkpoint_keep: int = 2
    #: Warm each (workload, seed) group once and fan every defense cell out
    #: from the shared warm-state checkpoint, instead of re-warming the
    #: hierarchy inside every cell.
    share_warm: bool = True

    def __post_init__(self) -> None:
        if self.figure not in FIGURES:
            raise CampaignError(
                f"unknown figure {self.figure!r}; have {sorted(FIGURES)}")
        if self.max_retries < 0:
            raise CampaignError("max_retries must be >= 0")
        if self.max_workers < 1:
            raise CampaignError("max_workers must be >= 1")
        if self.stall_timeout_s <= 0 or self.timeout_s <= 0:
            raise CampaignError("timeouts must be positive")
        if self.checkpoint_interval < 0:
            raise CampaignError("checkpoint_interval must be >= 0")
        if self.checkpoint_keep < 1:
            raise CampaignError("checkpoint_keep must be >= 1")

    def to_dict(self) -> dict:
        data = asdict(self)
        data["benchmarks"] = list(self.benchmarks)
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "CampaignConfig":
        data = dict(data)
        data["benchmarks"] = tuple(data.get("benchmarks") or ())
        return cls(**data)

    def config_hash(self) -> str:
        """Deterministic digest of every parameter that affects results."""
        canonical = json.dumps(self.to_dict(), sort_keys=True,
                               separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]

    @property
    def defenses(self) -> List[DefenseKind]:
        return list(FIGURES[self.figure][1])

    @property
    def kind(self) -> str:
        return FIGURES[self.figure][0]

    def suite(self) -> List[str]:
        if self.benchmarks:
            return list(self.benchmarks)
        if self.kind == "repair":
            from repro.analysis.witness import variant_name, WITNESS_KINDS
            return [f"{kind.value}/{variant_name(kind, True)}"
                    for kind in WITNESS_KINDS]
        return spec_names() if self.kind == "spec" else parsec_names()

    def build_cells(self) -> List[CellSpec]:
        """The full cell list: per benchmark, a baseline cell + one per
        defense.  Order is the row order of the rendered figure.  Repair
        cells measure their own baseline (the unrepaired program), so they
        get no separate ``none`` cell."""
        cells: List[CellSpec] = []
        threads = self.num_threads if self.kind == "parsec" else 1
        baseline = [] if self.kind == "repair" else [DefenseKind.NONE]
        for benchmark in self.suite():
            for defense in baseline + self.defenses:
                cells.append(CellSpec(
                    kind=self.kind, benchmark=benchmark,
                    defense=defense.value,
                    target_instructions=self.target_instructions,
                    warm_runs=self.warm_runs, num_threads=threads,
                    seed=self.seed, max_cycles=self.max_cycles,
                    timeout_s=self.timeout_s))
        return cells


def system_config(cell: CellSpec, reseed: int = 0) -> SystemConfig:
    """The :class:`SystemConfig` a cell runs under.

    ``reseed`` perturbs the MTE tag-assignment seed (the retry knob, same
    convention as ``run_resilient``); the cycle budget lands in
    :attr:`~repro.config.CoreConfig.max_cycles` so every ``run()`` under
    this config inherits it.
    """
    config = CORTEX_A76.with_defense(cell.defense_kind)
    if cell.kind == "parsec":
        config = config.with_cores(cell.num_threads)
    if reseed:
        config = replace(config,
                         mte=replace(config.mte,
                                     seed=config.mte.seed + reseed))
    if cell.max_cycles is not None:
        config = replace(config,
                         core=replace(config.core,
                                      max_cycles=cell.max_cycles))
    return config


def rows_from_records(cells: Sequence[CellSpec],
                      records: Dict[str, dict]) -> List[ExperimentRow]:
    """Join completed cell records into renderable experiment rows.

    ``records`` maps ``cell_id`` to the stored ``row`` payload.  A defense
    cell without a completed baseline for its benchmark cannot be
    normalized, so it is dropped here and surfaces as a missing cell in
    :func:`~repro.eval.experiments.render_rows` — partial figures degrade
    visibly, they never divide by a made-up baseline.
    """
    rows: List[ExperimentRow] = []
    baselines = {
        cell.benchmark: records[cell.cell_id]["row"]["cycles"]
        for cell in cells
        if cell.defense == DefenseKind.NONE.value and cell.cell_id in records
    }
    for cell in cells:
        record = records.get(cell.cell_id)
        if record is None:
            continue
        payload = record["row"]
        # Repair cells are self-normalizing: the unrepaired program's
        # cycles ride along in the payload instead of a separate cell.
        baseline_cycles = payload.get("baseline_cycles") \
            if cell.kind == "repair" else baselines.get(cell.benchmark)
        if baseline_cycles is None:
            continue
        rows.append(ExperimentRow(
            benchmark=cell.benchmark, defense=cell.defense_kind,
            cycles=payload["cycles"], baseline_cycles=baseline_cycles,
            restricted_fraction=payload["restricted_fraction"],
            ipc=payload["ipc"]))
    return rows
