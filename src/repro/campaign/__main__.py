"""Campaign CLI: run, resume, and smoke-test experiment sweeps.

    python -m repro.campaign --figure 6 --run-dir runs/fig6
    python -m repro.campaign --resume runs/fig6
    python -m repro.campaign --smoke

Exit codes: 0 — every cell completed; 1 — campaign finished but some cells
exhausted their retries (partial figure printed, structured report in
``report.json``); 2 — usage error.

``--smoke`` is the CI acceptance check: it runs a small sweep twice — once
uninterrupted, once SIGKILLed mid-flight and resumed — and asserts the
resumed run skipped completed cells and rendered byte-identical rows.
"""

from __future__ import annotations

import argparse
import os
import signal
import subprocess
import sys
import tempfile
import time

from repro.campaign.cells import CampaignConfig, FIGURES
from repro.campaign.scheduler import CampaignScheduler, _worker_env
from repro.campaign.store import ResultStore
from repro.errors import CampaignError


def _progress(message: str) -> None:
    print(f"[campaign] {message}", file=sys.stderr)


def _finish(outcome) -> int:
    print(outcome.render("normalized"))
    report = outcome.report()
    if not outcome.ok:
        print(f"\ncampaign incomplete: {len(report['failed'])} cell(s) "
              f"failed, {len(report['corrupt_records'])} corrupt record(s); "
              "see report.json", file=sys.stderr)
        for cell_id, failures in report["failed"].items():
            for failure in failures:
                print(f"  {cell_id}: attempt {failure['attempt']} "
                      f"{failure['kind']}: {failure['error']}",
                      file=sys.stderr)
        return 1
    print(f"\ncampaign complete: {report['completed']}/"
          f"{report['total_cells']} cells "
          f"({report['skipped_already_done']} resumed)", file=sys.stderr)
    return 0


def _figure_name(figure: str) -> str:
    """``6`` -> ``figure6``; named sweeps (``repair-overhead``) pass as-is."""
    if figure in FIGURES or figure.startswith("figure"):
        return figure
    return f"figure{figure}"


def _config_from_args(args) -> CampaignConfig:
    figure = _figure_name(args.figure)
    benchmarks = tuple(b for b in (args.benchmarks or "").split(",") if b)
    return CampaignConfig(
        figure=figure, benchmarks=benchmarks,
        target_instructions=args.target_instructions,
        warm_runs=args.warm_runs, num_threads=args.num_threads,
        seed=args.seed, max_cycles=args.max_cycles,
        timeout_s=args.timeout, max_retries=args.max_retries,
        stall_timeout_s=args.stall_timeout, max_workers=args.max_workers,
        checkpoint_interval=args.checkpoint_interval,
        checkpoint_keep=args.checkpoint_keep,
        share_warm=not args.no_share_warm)


# ----------------------------------------------------------------------
# the kill / resume / compare smoke (CI acceptance check)
# ----------------------------------------------------------------------

def _smoke_config() -> CampaignConfig:
    return CampaignConfig(
        figure="figure9", benchmarks=("505.mcf_r", "541.leela_r"),
        target_instructions=300, warm_runs=0, timeout_s=120.0,
        max_retries=1, max_workers=2, backoff_base_s=0.05,
        backoff_jitter_s=0.05, stall_timeout_s=60.0)


def smoke(base_dir: str = "", verbose: bool = True) -> int:
    say = _progress if verbose else (lambda message: None)
    base = base_dir or tempfile.mkdtemp(prefix="campaign-smoke-")
    config = _smoke_config()
    dir_ref = os.path.join(base, "uninterrupted")
    dir_kill = os.path.join(base, "interrupted")

    say("phase 1: uninterrupted reference sweep")
    reference = CampaignScheduler(config, dir_ref).run()
    if not reference.ok:
        print(f"FAIL: reference sweep incomplete: {reference.report()}",
              file=sys.stderr)
        return 1

    say("phase 2: sweep in a child process, SIGKILLed mid-flight")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.campaign", "--smoke-child", dir_kill],
        env=_worker_env(), start_new_session=True,
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
    store = ResultStore(dir_kill)
    total = len(config.build_cells())
    deadline = time.monotonic() + 120
    done_before_kill = 0
    while time.monotonic() < deadline:
        if proc.poll() is not None:
            print("FAIL: child sweep finished before it could be killed — "
                  "smoke workload too small", file=sys.stderr)
            return 1
        records, _ = store.load()
        done_before_kill = sum(1 for r in records if r.get("status") == "ok")
        if 1 <= done_before_kill < total:
            break
        time.sleep(0.05)
    else:
        print("FAIL: no cell completed within the smoke deadline",
              file=sys.stderr)
        return 1
    # SIGKILL the whole session: scheduler and any in-flight workers die
    # with no chance to clean up — the crash we claim to survive.
    os.killpg(os.getpgid(proc.pid), signal.SIGKILL)
    proc.wait()
    say(f"killed mid-flight with {done_before_kill}/{total} cells done")

    say("phase 3: resume the interrupted run directory")
    resumed = CampaignScheduler(config, dir_kill, progress=say).run(
        resume=True)

    failures = []
    if not resumed.ok:
        failures.append(f"resumed sweep incomplete: {resumed.report()}")
    if resumed.skipped < done_before_kill:
        failures.append(
            f"resume re-ran completed cells: skipped {resumed.skipped} "
            f"< {done_before_kill} done before the kill")
    for metric in ("normalized", "restricted"):
        if resumed.render(metric) != reference.render(metric):
            failures.append(
                f"{metric} rows differ between resumed and uninterrupted "
                f"runs:\n--- resumed ---\n{resumed.render(metric)}\n"
                f"--- reference ---\n{reference.render(metric)}")
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    if verbose:
        print(resumed.render("normalized"))
        print(f"\nsmoke: OK — killed at {done_before_kill}/{total} cells, "
              f"resume skipped {resumed.skipped} and rows match",
              file=sys.stderr)
    return 0


# ----------------------------------------------------------------------
# entry point
# ----------------------------------------------------------------------

def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.campaign",
        description="Crash-safe, resumable experiment campaigns "
                    "(Figures 6/7/9).")
    mode = parser.add_mutually_exclusive_group()
    mode.add_argument("--resume", metavar="RUN_DIR",
                      help="finish an interrupted campaign from its run "
                           "directory (config comes from the manifest)")
    mode.add_argument("--smoke", action="store_true",
                      help="kill/resume/compare self-test (CI target)")
    mode.add_argument("--smoke-child", metavar="RUN_DIR",
                      help=argparse.SUPPRESS)  # internal: smoke's victim
    parser.add_argument("--figure", default="6",
                        help="6, 7, 9, or repair-overhead (default 6); "
                             "ignored with --resume")
    parser.add_argument("--run-dir", help="run directory (created if needed)")
    parser.add_argument("--benchmarks",
                        help="comma-separated subset (default: full suite)")
    parser.add_argument("--target-instructions", type=int, default=4000)
    parser.add_argument("--warm-runs", type=int, default=1)
    parser.add_argument("--num-threads", type=int, default=4)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--max-cycles", type=int, default=None,
                        help="cycle budget per run (default: config)")
    parser.add_argument("--timeout", type=float, default=300.0,
                        help="wall-clock budget per cell (seconds)")
    parser.add_argument("--stall-timeout", type=float, default=60.0,
                        help="heartbeat staleness before a worker is "
                             "declared a straggler")
    parser.add_argument("--max-retries", type=int, default=2)
    parser.add_argument("--max-workers", type=int, default=2)
    parser.add_argument("--checkpoint-interval", type=int, default=10_000,
                        help="simulated cycles between mid-cell checkpoint "
                             "generations (0 disables checkpointing)")
    parser.add_argument("--checkpoint-keep", type=int, default=2,
                        help="checkpoint generations kept per cell")
    parser.add_argument("--no-share-warm", action="store_true",
                        help="re-warm the hierarchy inside every cell "
                             "instead of fanning defenses out from one "
                             "shared warm checkpoint per workload")
    parser.add_argument("--smoke-dir", default="",
                        help="keep --smoke artifacts here (default: tmp)")
    args = parser.parse_args(argv)

    try:
        if args.smoke:
            return smoke(args.smoke_dir)
        if args.smoke_child:
            scheduler = CampaignScheduler(_smoke_config(), args.smoke_child)
            return 0 if scheduler.run().ok else 1
        if args.resume:
            store = ResultStore(args.resume)
            config = store.resume_config()
            scheduler = CampaignScheduler(config, args.resume,
                                          progress=_progress)
            return _finish(scheduler.run(resume=True))
        if not args.run_dir:
            parser.error("--run-dir is required (or use --resume/--smoke)")
        figure = _figure_name(args.figure)
        if figure not in FIGURES:
            parser.error(f"unsupported figure {args.figure!r}; campaigns "
                         f"cover {sorted(FIGURES)}")
        scheduler = CampaignScheduler(_config_from_args(args), args.run_dir,
                                      progress=_progress)
        return _finish(scheduler.run())
    except CampaignError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
