"""Campaign worker: runs exactly one cell, in its own process.

The scheduler launches ``python -m repro.campaign.worker --spec … --out …
--heartbeat …`` so that a crash, OOM kill, or runaway loop takes down *one
cell's attempt*, never the campaign.  The contract with the scheduler:

- heartbeat file updated from inside the simulation loop (simulated-cycle
  progress, see :mod:`repro.campaign.heartbeat`);
- outcome written to ``--out`` atomically, then exit code 0 (measured ok),
  ``3`` (typed :class:`~repro.errors.ReproError` — retryable), or ``1``
  (unexpected exception — a harness bug, not retried silently).

:func:`run_cell` is the process-agnostic core, also used in-process by
tests.
"""

from __future__ import annotations

import argparse
import dataclasses
import hashlib
import json
import os
import sys
import time
import traceback
from dataclasses import dataclass
from typing import List, Optional

from repro.campaign.cells import CellSpec, system_config
from repro.campaign.heartbeat import Heartbeat
from repro.campaign.store import atomic_write
from repro.checkpoint import (CheckpointHook, CheckpointManager,
                              CheckpointStats, config_fingerprint,
                              program_fingerprint, read_checkpoint,
                              write_checkpoint)
from repro.config import DefenseKind
from repro.errors import CheckpointError, ReproError
from repro.multicore import MulticoreSystem
from repro.system import build_system
from repro.workloads import PARSEC_BY_NAME, SPEC_BY_NAME
from repro.workloads.generator import HEAP_BASE, generate
from repro.workloads.parsec import (SHARED_BASE, SHARED_SIZE,
                                    THREAD_HEAP_STRIDE)

#: Worker exit code for a typed, retryable simulation failure.
EXIT_TYPED_FAILURE = 3


@dataclass
class CheckpointPlan:
    """Scheduler-provided checkpointing knobs for one cell.

    ``stem`` is *attempt-independent* (no ``.a<N>`` suffix), so a retried
    attempt finds the generations its predecessor wrote and resumes
    mid-cell instead of restarting from cycle 0.  ``warm_dir`` is the
    campaign-wide directory holding shared warm-state checkpoints; empty
    disables warm sharing.  The default plan (both empty/zero) reproduces
    the pre-checkpoint worker behavior exactly.
    """

    stem: str = ""
    interval: int = 0
    keep: int = 2
    warm_dir: str = ""

    @property
    def periodic(self) -> bool:
        """Per-cell generation checkpoints enabled?"""
        return bool(self.stem) and self.interval > 0

    @property
    def share_warm(self) -> bool:
        return bool(self.warm_dir)

    @property
    def active(self) -> bool:
        return self.periodic or self.share_warm


def _degradation(stage: str, err: CheckpointError) -> dict:
    """One graceful-degradation record for the row payload / report.json."""
    return {"stage": stage, "kind": err.kind,
            "path": os.path.basename(err.path) if err.path else "",
            "error": str(err)}


def _clear_generations(manager: CheckpointManager) -> None:
    """Drop every generation (all unusable: corrupt, or config-skewed
    after a reseeding retry) so the fresh attempt starts a clean lineage."""
    for generation in manager.generations():
        try:
            os.unlink(manager.path_for(generation))
        except OSError:
            pass


def _resume(manager: Optional[CheckpointManager], system, programs,
            degradations: List[dict]):
    """Restore the newest valid per-cell generation, if one exists.

    Returns ``(result, dirty)``: the
    :class:`~repro.checkpoint.manager.RestoreResult` or None (fresh
    start), and whether the failed walk may have left ``system`` partially
    loaded (the caller rebuilds it then).  Generations rejected on the
    walk become ``resume`` degradation records; ``config-skew`` is silent
    because it is the *expected* outcome of finding a previous reseed's
    checkpoints after a typed failure bumped the MTE seed.  Corruption
    never propagates: the worst case is warming and running from cycle 0.
    """
    if manager is None:
        return None, False
    try:
        result = manager.restore(system, programs)
    except CheckpointError as err:
        if err.kind == "missing":
            return None, False
        if err.kind != "config-skew":
            degradations.append(_degradation("resume", err))
        _clear_generations(manager)
        return None, True
    for rejected in result.rejected:
        degradations.append(_degradation("resume", rejected))
    return result, False


def _shared_warm_state(cell: CellSpec, reseed: int, programs,
                       plan: CheckpointPlan,
                       stats: Optional[CheckpointStats],
                       degradations: List[dict], produce):
    """The warm hierarchy state for this cell's warm group.

    Every defense cell of one (workload, seed) group shares a single
    warm-state checkpoint, keyed by the *canonical* warm config (the
    cell's config with the defense forced to ``none`` — warming measures
    nothing, so the group warms once under the baseline) plus the program
    fingerprint.  The first member to arrive produces the file; the rest
    fan out from the identical hierarchy state.  A member that finds the
    file corrupt re-warms locally — recording the degradation, never
    failing the cell — and its atomic rewrite heals the file for the rest
    of the group.  Returns ``(hierarchy state dict, origin label)``.
    """
    warm_cell = dataclasses.replace(cell, defense=DefenseKind.NONE.value)
    warm_fp = config_fingerprint(system_config(warm_cell, reseed))
    prog_fp = program_fingerprint(programs)
    key = hashlib.sha256(
        f"{warm_fp}:{prog_fp}:{cell.warm_runs}".encode("utf-8")
    ).hexdigest()[:12]
    path = os.path.join(plan.warm_dir, f"warm.{key}.ckpt")
    try:
        _, sections = read_checkpoint(path, expect_config=warm_fp,
                                      expect_program=prog_fp)
        if "hierarchy" not in sections:
            raise CheckpointError("warm checkpoint lacks a hierarchy "
                                  "section", path=path,
                                  kind="section-corrupt")
        if stats is not None:
            stats.restores += 1
        return sections["hierarchy"], "shared"
    except CheckpointError as err:
        if err.kind != "missing":
            degradations.append(_degradation("warm", err))
            if stats is not None:
                stats.corrupt_rejected += 1
    state, cycle = produce(system_config(warm_cell, reseed))
    nbytes = write_checkpoint(path, {"hierarchy": state},
                              config_hash=warm_fp, program_hash=prog_fp,
                              cycle=cycle)
    if stats is not None:
        stats.saves += 1
        stats.bytes += nbytes
        stats.save_cycles = cycle
    return state, "produced"


def _run_spec_cell(cell: CellSpec, reseed: int,
                   heartbeat: Optional[Heartbeat],
                   plan: CheckpointPlan, timings: dict) -> dict:
    profile = SPEC_BY_NAME[cell.benchmark]
    t_mark = time.monotonic()
    program = generate(
        profile, seed=cell.seed,
        target_instructions=cell.target_instructions,
        mte_instrumented=cell.defense_kind.uses_specasan).program
    generate_ms = (time.monotonic() - t_mark) * 1000.0
    config = system_config(cell, reseed)
    stats = CheckpointStats() if plan.active else None
    manager = (CheckpointManager(plan.stem, keep=plan.keep, stats=stats)
               if plan.periodic else None)
    degradations: List[dict] = []

    system = build_system(config)
    system.checkpoint_stats = stats
    t_mark = time.monotonic()
    resumed, dirty = _resume(manager, system, program, degradations)
    restore_ms = (time.monotonic() - t_mark) * 1000.0
    if dirty:
        system = build_system(config)
        system.checkpoint_stats = stats
    t_mark = time.monotonic()
    if resumed is not None:
        origin = "checkpoint"
        core = system.core
    elif plan.share_warm and cell.warm_runs > 0:
        core = system.prepare(program)
        warm_state, origin = _shared_warm_state(
            cell, reseed, program, plan, stats, degradations,
            produce=lambda warm_config: _produce_spec_warm(
                warm_config, program, cell.warm_runs))
        system.hierarchy.load_state_dict(warm_state)
    else:
        for _ in range(cell.warm_runs):
            warm_core = system.prepare(program)
            warm_core.heartbeat = heartbeat
            warm_core.run()
        core = system.prepare(program)
        origin = "local" if cell.warm_runs else "cold"
    warm_ms = (time.monotonic() - t_mark) * 1000.0
    core.heartbeat = heartbeat
    if manager is not None:
        core.checkpoint_hook = CheckpointHook(manager, system, program,
                                              interval=plan.interval)
    t_mark = time.monotonic()
    core.run()
    run_ms = (time.monotonic() - t_mark) * 1000.0
    result = system.result()
    if result.fault is not None:
        raise ReproError(
            f"{cell.benchmark} faulted under {cell.defense}: {result.fault}")
    row = {
        "cycles": result.cycles,
        "instructions": result.instructions,
        "restricted_fraction": result.stats.restricted_fraction,
        "ipc": result.ipc,
        "halted": result.halted,
        "stats": system.stats_registry().dump(),
    }
    timings.update(generate_ms=round(generate_ms, 3),
                   restore_ms=round(restore_ms, 3),
                   warm_ms=round(warm_ms, 3), run_ms=round(run_ms, 3))
    if plan.active:
        row["warm"] = origin
        row["degradations"] = degradations
        if resumed is not None:
            row["resumed_cycle"] = resumed.cycle
    return row


def _produce_spec_warm(warm_config, program, warm_runs: int):
    """Warm a fresh baseline system; returns (hierarchy state, cycles)."""
    warm_system = build_system(warm_config)
    for _ in range(warm_runs):
        warm_system.prepare(program).run()
    warm_system.hierarchy.quiesce()
    return warm_system.hierarchy.state_dict(), warm_system.core.cycle


def _produce_parsec_warm(warm_config, programs, warm_runs: int,
                         max_cycles: int):
    warm_system = MulticoreSystem(warm_config)
    warm_system.run(programs, max_cycles=max_cycles,
                    warm_runs=warm_runs - 1)
    warm_system.hierarchy.quiesce()
    return warm_system.hierarchy.state_dict(), warm_system.result().cycles


def _run_parsec_cell(cell: CellSpec, reseed: int,
                     heartbeat: Optional[Heartbeat],
                     plan: CheckpointPlan, timings: dict) -> dict:
    spec = PARSEC_BY_NAME[cell.benchmark]
    instrumented = cell.defense_kind.uses_specasan
    t_mark = time.monotonic()
    programs = [generate(
        spec.profile, seed=cell.seed + t * 101,
        target_instructions=cell.target_instructions,
        heap_base=HEAP_BASE + t * THREAD_HEAP_STRIDE,
        shared_base=SHARED_BASE, shared_size=SHARED_SIZE,
        shared_fraction=spec.shared_fraction,
        shared_store_fraction=spec.shared_store_fraction,
        mte_instrumented=instrumented).program
        for t in range(cell.num_threads)]
    generate_ms = (time.monotonic() - t_mark) * 1000.0
    config = system_config(cell, reseed)
    stats = CheckpointStats() if plan.active else None
    manager = (CheckpointManager(plan.stem, keep=plan.keep, stats=stats)
               if plan.periodic else None)
    degradations: List[dict] = []

    system = MulticoreSystem(config)
    system.heartbeat = heartbeat
    system.checkpoint_stats = stats
    t_mark = time.monotonic()
    resumed, dirty = _resume(manager, system, programs, degradations)
    restore_ms = (time.monotonic() - t_mark) * 1000.0
    if dirty:
        system = MulticoreSystem(config)
        system.heartbeat = heartbeat
        system.checkpoint_stats = stats
    origin = "checkpoint"
    t_mark = time.monotonic()
    if resumed is None:
        if plan.share_warm and cell.warm_runs > 0:
            system.prepare(programs)
            warm_state, origin = _shared_warm_state(
                cell, reseed, programs, plan, stats, degradations,
                produce=lambda warm_config: _produce_parsec_warm(
                    warm_config, programs, cell.warm_runs,
                    config.core.max_cycles))
            system.hierarchy.load_state_dict(warm_state)
        else:
            for _ in range(cell.warm_runs):
                system.prepare(programs)
                system.run_prepared(config.core.max_cycles)
            system.prepare(programs)
            origin = "local" if cell.warm_runs else "cold"
    warm_ms = (time.monotonic() - t_mark) * 1000.0
    if manager is not None:
        system.checkpoint_hook = CheckpointHook(manager, system, programs,
                                                interval=plan.interval)
    t_mark = time.monotonic()
    system.run_prepared(config.core.max_cycles)
    run_ms = (time.monotonic() - t_mark) * 1000.0
    result = system.result()
    if any(result.faults):
        raise ReproError(f"{cell.benchmark} faulted under {cell.defense}")
    row = {
        "cycles": result.cycles,
        "instructions": result.instructions,
        "restricted_fraction": result.restricted_fraction,
        "ipc": result.ipc,
        "halted": True,
        "stats": system.stats_registry().dump(),
    }
    timings.update(generate_ms=round(generate_ms, 3),
                   restore_ms=round(restore_ms, 3),
                   warm_ms=round(warm_ms, 3), run_ms=round(run_ms, 3))
    if plan.active:
        row["warm"] = origin
        row["degradations"] = degradations
        if resumed is not None:
            row["resumed_cycle"] = resumed.cycle
    return row


def _run_repair_cell(cell: CellSpec, reseed: int,
                     heartbeat: Optional[Heartbeat],
                     timings: dict) -> dict:
    """Synthesize the witness, repair it, and measure per-fix overhead.

    ``cell.benchmark`` is a witness subject (``pht/same-key``); the cell
    is self-normalizing — the payload carries both the unrepaired and the
    repaired cycle counts, so no separate baseline cell exists.
    """
    from repro.analysis import repair as repair_mod
    from repro.analysis.witness import (secret_ranges_of, synthesize,
                                        variant_name, witness_kind)
    from repro.attacks.common import run_attack_program
    from dataclasses import replace as dc_replace

    kind_name, _, variant = cell.benchmark.partition("/")
    kind = witness_kind(kind_name)
    residual = variant != variant_name(kind, residual=False)
    t_mark = time.monotonic()
    witness = synthesize(kind, residual=residual)
    synthesize_ms = (time.monotonic() - t_mark) * 1000.0
    if heartbeat is not None:
        heartbeat.beat(1)
    config = system_config(cell, reseed)
    t_mark = time.monotonic()
    result = repair_mod.plan(witness.attack.builder_program,
                             secret_ranges_of(witness.attack),
                             defense=cell.defense_kind)
    plan_ms = (time.monotonic() - t_mark) * 1000.0
    if heartbeat is not None:
        heartbeat.beat(2)
    t_mark = time.monotonic()
    registry = repair_mod.measure_overhead(result, subject=witness.subject,
                                           config=config)
    after = run_attack_program(
        dc_replace(witness.attack, builder_program=result.repaired),
        cell.defense_kind, config)
    measure_ms = (time.monotonic() - t_mark) * 1000.0
    if after.leaked:
        raise ReproError(
            f"{cell.benchmark} still leaks under {cell.defense} "
            f"after repair (fixes: {[f.kind.value for f in result.fixes]})")
    prefix = f"repair.{witness.subject.replace('/', '-')}"
    baseline = int(registry.get(f"{prefix}.baseline_cycles").value)
    repaired = (int(registry.get(f"{prefix}.repaired_cycles").value)
                if result.fixes else baseline)
    timings.update(synthesize_ms=round(synthesize_ms, 3),
                   plan_ms=round(plan_ms, 3),
                   measure_ms=round(measure_ms, 3))
    return {
        "cycles": repaired,
        "baseline_cycles": baseline,
        "instructions": 0,
        "restricted_fraction": 0.0,
        "ipc": 0.0,
        "halted": not after.faulted,
        "verified": result.verified,
        "fixes": [fix.kind.value for fix in result.fixes],
        "stats": registry.dump(),
    }


def run_cell(cell: CellSpec, reseed: int = 0,
             heartbeat: Optional[Heartbeat] = None,
             checkpointing: Optional[CheckpointPlan] = None,
             timings: Optional[dict] = None) -> dict:
    """Measure one cell; returns the row payload or raises ReproError.

    ``checkpointing`` (default: fully disabled) controls mid-cell
    generation checkpoints and shared warm-state reuse; repair cells have
    no long simulation loop of the right shape and ignore it.

    ``timings`` is an optional out-dict collecting wall-clock phase
    durations (``generate_ms`` / ``warm_ms`` / ``run_ms`` /
    ``restore_ms``, repair: ``synthesize_ms`` / ``plan_ms`` /
    ``measure_ms``).  They ride the outcome *envelope*, never the row —
    row payloads stay deterministic, the property resume byte-identity
    is built on.
    """
    plan = checkpointing if checkpointing is not None else CheckpointPlan()
    phases = timings if timings is not None else {}
    if cell.kind == "spec":
        return _run_spec_cell(cell, reseed, heartbeat, plan, phases)
    if cell.kind == "repair":
        return _run_repair_cell(cell, reseed, heartbeat, phases)
    return _run_parsec_cell(cell, reseed, heartbeat, plan, phases)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.campaign.worker",
        description="Run one campaign cell (scheduler-internal).")
    parser.add_argument("--spec", required=True,
                        help="path to the CellSpec JSON")
    parser.add_argument("--out", required=True,
                        help="where to write the outcome JSON (atomic)")
    parser.add_argument("--heartbeat", required=True,
                        help="heartbeat file pulsed from the run loop")
    parser.add_argument("--attempt", type=int, default=0)
    parser.add_argument("--reseed", type=int, default=0)
    parser.add_argument("--heartbeat-cycles", type=int, default=2000)
    parser.add_argument("--checkpoint-stem", default="",
                        help="attempt-independent per-cell checkpoint stem")
    parser.add_argument("--checkpoint-interval", type=int, default=0,
                        help="simulated cycles between generations "
                             "(0 disables)")
    parser.add_argument("--checkpoint-keep", type=int, default=2)
    parser.add_argument("--warm-dir", default="",
                        help="shared warm-checkpoint directory "
                             "(empty disables warm sharing)")
    parser.add_argument("--trace-id", default="",
                        help="campaign-minted trace ID echoed in the "
                             "outcome (cell-scoped span correlation)")
    args = parser.parse_args(argv)

    with open(args.spec, encoding="utf-8") as handle:
        cell = CellSpec.from_dict(json.load(handle))
    heartbeat = Heartbeat(args.heartbeat, interval=args.heartbeat_cycles)
    heartbeat.beat(0)  # prove liveness before the (long) first interval
    plan = CheckpointPlan(stem=args.checkpoint_stem,
                          interval=args.checkpoint_interval,
                          keep=args.checkpoint_keep,
                          warm_dir=args.warm_dir)

    base = {"cell_id": cell.cell_id, "attempt": args.attempt,
            "reseed": args.reseed}
    if args.trace_id:
        base["trace"] = args.trace_id
    timings: dict = {}
    try:
        row = run_cell(cell, reseed=args.reseed, heartbeat=heartbeat,
                       checkpointing=plan, timings=timings)
    except ReproError as exc:
        atomic_write(args.out, json.dumps({
            **base, "status": "failed",
            "error_type": type(exc).__name__, "error": str(exc)}))
        return EXIT_TYPED_FAILURE
    except Exception as exc:  # harness bug: report, don't mask as retryable
        atomic_write(args.out, json.dumps({
            **base, "status": "crashed",
            "error_type": type(exc).__name__, "error": str(exc),
            "traceback": traceback.format_exc()}))
        return 1
    atomic_write(args.out, json.dumps(
        {**base, "status": "ok", "row": row, "timings": timings}))
    return 0


if __name__ == "__main__":
    sys.exit(main())
