"""Campaign worker: runs exactly one cell, in its own process.

The scheduler launches ``python -m repro.campaign.worker --spec … --out …
--heartbeat …`` so that a crash, OOM kill, or runaway loop takes down *one
cell's attempt*, never the campaign.  The contract with the scheduler:

- heartbeat file updated from inside the simulation loop (simulated-cycle
  progress, see :mod:`repro.campaign.heartbeat`);
- outcome written to ``--out`` atomically, then exit code 0 (measured ok),
  ``3`` (typed :class:`~repro.errors.ReproError` — retryable), or ``1``
  (unexpected exception — a harness bug, not retried silently).

:func:`run_cell` is the process-agnostic core, also used in-process by
tests.
"""

from __future__ import annotations

import argparse
import json
import sys
import traceback
from typing import Optional

from repro.campaign.cells import CellSpec, system_config
from repro.campaign.heartbeat import Heartbeat
from repro.campaign.store import atomic_write
from repro.errors import ReproError
from repro.multicore import MulticoreSystem
from repro.system import build_system
from repro.workloads import PARSEC_BY_NAME, SPEC_BY_NAME
from repro.workloads.generator import HEAP_BASE, generate
from repro.workloads.parsec import (SHARED_BASE, SHARED_SIZE,
                                    THREAD_HEAP_STRIDE)

#: Worker exit code for a typed, retryable simulation failure.
EXIT_TYPED_FAILURE = 3


def _run_spec_cell(cell: CellSpec, reseed: int,
                   heartbeat: Optional[Heartbeat]) -> dict:
    profile = SPEC_BY_NAME[cell.benchmark]
    program = generate(
        profile, seed=cell.seed,
        target_instructions=cell.target_instructions,
        mte_instrumented=cell.defense_kind.uses_specasan).program
    system = build_system(system_config(cell, reseed))

    def measured_run():
        core = system.prepare(program)
        core.heartbeat = heartbeat
        core.run()
        return system.result()

    for _ in range(cell.warm_runs):
        measured_run()
    result = measured_run()
    if result.fault is not None:
        raise ReproError(
            f"{cell.benchmark} faulted under {cell.defense}: {result.fault}")
    return {
        "cycles": result.cycles,
        "instructions": result.instructions,
        "restricted_fraction": result.stats.restricted_fraction,
        "ipc": result.ipc,
        "halted": result.halted,
        "stats": system.stats_registry().dump(),
    }


def _run_parsec_cell(cell: CellSpec, reseed: int,
                     heartbeat: Optional[Heartbeat]) -> dict:
    spec = PARSEC_BY_NAME[cell.benchmark]
    instrumented = cell.defense_kind.uses_specasan
    programs = [generate(
        spec.profile, seed=cell.seed + t * 101,
        target_instructions=cell.target_instructions,
        heap_base=HEAP_BASE + t * THREAD_HEAP_STRIDE,
        shared_base=SHARED_BASE, shared_size=SHARED_SIZE,
        shared_fraction=spec.shared_fraction,
        shared_store_fraction=spec.shared_store_fraction,
        mte_instrumented=instrumented).program
        for t in range(cell.num_threads)]
    config = system_config(cell, reseed)
    system = MulticoreSystem(config)
    system.heartbeat = heartbeat
    result = system.run(programs, max_cycles=config.core.max_cycles,
                        warm_runs=cell.warm_runs)
    if any(result.faults):
        raise ReproError(f"{cell.benchmark} faulted under {cell.defense}")
    return {
        "cycles": result.cycles,
        "instructions": result.instructions,
        "restricted_fraction": result.restricted_fraction,
        "ipc": result.ipc,
        "halted": True,
        "stats": system.stats_registry().dump(),
    }


def _run_repair_cell(cell: CellSpec, reseed: int,
                     heartbeat: Optional[Heartbeat]) -> dict:
    """Synthesize the witness, repair it, and measure per-fix overhead.

    ``cell.benchmark`` is a witness subject (``pht/same-key``); the cell
    is self-normalizing — the payload carries both the unrepaired and the
    repaired cycle counts, so no separate baseline cell exists.
    """
    from repro.analysis import repair as repair_mod
    from repro.analysis.witness import (secret_ranges_of, synthesize,
                                        variant_name, witness_kind)
    from repro.attacks.common import run_attack_program
    from dataclasses import replace as dc_replace

    kind_name, _, variant = cell.benchmark.partition("/")
    kind = witness_kind(kind_name)
    residual = variant != variant_name(kind, residual=False)
    witness = synthesize(kind, residual=residual)
    if heartbeat is not None:
        heartbeat.beat(1)
    config = system_config(cell, reseed)
    result = repair_mod.plan(witness.attack.builder_program,
                             secret_ranges_of(witness.attack),
                             defense=cell.defense_kind)
    if heartbeat is not None:
        heartbeat.beat(2)
    registry = repair_mod.measure_overhead(result, subject=witness.subject,
                                           config=config)
    after = run_attack_program(
        dc_replace(witness.attack, builder_program=result.repaired),
        cell.defense_kind, config)
    if after.leaked:
        raise ReproError(
            f"{cell.benchmark} still leaks under {cell.defense} "
            f"after repair (fixes: {[f.kind.value for f in result.fixes]})")
    prefix = f"repair.{witness.subject.replace('/', '-')}"
    baseline = int(registry.get(f"{prefix}.baseline_cycles").value)
    repaired = (int(registry.get(f"{prefix}.repaired_cycles").value)
                if result.fixes else baseline)
    return {
        "cycles": repaired,
        "baseline_cycles": baseline,
        "instructions": 0,
        "restricted_fraction": 0.0,
        "ipc": 0.0,
        "halted": not after.faulted,
        "verified": result.verified,
        "fixes": [fix.kind.value for fix in result.fixes],
        "stats": registry.dump(),
    }


def run_cell(cell: CellSpec, reseed: int = 0,
             heartbeat: Optional[Heartbeat] = None) -> dict:
    """Measure one cell; returns the row payload or raises ReproError."""
    if cell.kind == "spec":
        return _run_spec_cell(cell, reseed, heartbeat)
    if cell.kind == "repair":
        return _run_repair_cell(cell, reseed, heartbeat)
    return _run_parsec_cell(cell, reseed, heartbeat)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.campaign.worker",
        description="Run one campaign cell (scheduler-internal).")
    parser.add_argument("--spec", required=True,
                        help="path to the CellSpec JSON")
    parser.add_argument("--out", required=True,
                        help="where to write the outcome JSON (atomic)")
    parser.add_argument("--heartbeat", required=True,
                        help="heartbeat file pulsed from the run loop")
    parser.add_argument("--attempt", type=int, default=0)
    parser.add_argument("--reseed", type=int, default=0)
    parser.add_argument("--heartbeat-cycles", type=int, default=2000)
    args = parser.parse_args(argv)

    with open(args.spec, encoding="utf-8") as handle:
        cell = CellSpec.from_dict(json.load(handle))
    heartbeat = Heartbeat(args.heartbeat, interval=args.heartbeat_cycles)
    heartbeat.beat(0)  # prove liveness before the (long) first interval

    base = {"cell_id": cell.cell_id, "attempt": args.attempt,
            "reseed": args.reseed}
    try:
        row = run_cell(cell, reseed=args.reseed, heartbeat=heartbeat)
    except ReproError as exc:
        atomic_write(args.out, json.dumps({
            **base, "status": "failed",
            "error_type": type(exc).__name__, "error": str(exc)}))
        return EXIT_TYPED_FAILURE
    except Exception as exc:  # harness bug: report, don't mask as retryable
        atomic_write(args.out, json.dumps({
            **base, "status": "crashed",
            "error_type": type(exc).__name__, "error": str(exc),
            "traceback": traceback.format_exc()}))
        return 1
    atomic_write(args.out, json.dumps({**base, "status": "ok", "row": row}))
    return 0


if __name__ == "__main__":
    sys.exit(main())
