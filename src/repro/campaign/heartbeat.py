"""Worker liveness: heartbeats tied to *simulated* progress.

A wall-clock timer thread would keep beating while the simulation loop is
wedged, which is exactly the failure the straggler detector must catch.
Instead the core's run loop pulses :class:`Heartbeat` every ``interval``
simulated cycles (the ``core.heartbeat`` hook, mirroring the resilience
hooks), so a worker that stops making cycle progress goes silent and the
campaign scheduler reaps it after ``stall_timeout_s``.

The beat itself is a tiny atomic file write; the monitor reads freshness
from the file's mtime, so reader and writer need no protocol beyond the
filesystem.
"""

from __future__ import annotations

import json
import os
import time
from typing import Optional

from repro.campaign.store import atomic_write


class Heartbeat:
    """Writes liveness records to ``path`` at most every ``min_wall_s``.

    ``interval`` is consumed by the core/multicore run loops (beat every N
    simulated cycles); ``min_wall_s`` rate-limits the actual filesystem
    traffic when simulation is fast.
    """

    def __init__(self, path: str, interval: int = 2000,
                 min_wall_s: float = 0.05):
        self.path = path
        self.interval = max(1, int(interval))
        self.min_wall_s = min_wall_s
        self._last_wall = 0.0
        #: Total beats actually written (diagnostics).
        self.beats = 0

    def beat(self, cycle: int) -> None:
        now = time.time()
        if self.beats and now - self._last_wall < self.min_wall_s:
            return
        self._last_wall = now
        self.beats += 1
        atomic_write(self.path, json.dumps(
            {"pid": os.getpid(), "cycle": cycle, "time": now}))


def age_s(path: str, now: Optional[float] = None) -> Optional[float]:
    """Seconds since the last beat, or ``None`` if no beat landed yet."""
    try:
        mtime = os.stat(path).st_mtime
    except OSError:
        return None
    return (now if now is not None else time.time()) - mtime
