"""Crash-safe experiment campaigns (``python -m repro.campaign``).

The sweeps behind Figures 6/7/9 as independent, process-isolated cells with
wall-clock and cycle budgets, heartbeat-based straggler recovery, retry
with exponential backoff + reseeding, and a durable resumable result store:

    python -m repro.campaign --figure 6 --run-dir runs/fig6
    # ... SIGKILL, power loss, Ctrl-C ...
    python -m repro.campaign --resume runs/fig6   # finishes what's missing

See DESIGN.md § "Campaign orchestration" for the cell lifecycle, store
format, and resume semantics.
"""

from repro.campaign.cells import (CampaignConfig, CellSpec, FIGURES,
                                  SCHEMA_VERSION, rows_from_records,
                                  system_config)
from repro.campaign.heartbeat import Heartbeat
from repro.campaign.scheduler import (AttemptFailure, CampaignOutcome,
                                      CampaignScheduler)
from repro.campaign.store import (CorruptRecord, ResultStore, atomic_write,
                                  checksum)
from repro.campaign.worker import run_cell

__all__ = [
    "AttemptFailure",
    "atomic_write",
    "CampaignConfig",
    "CampaignOutcome",
    "CampaignScheduler",
    "CellSpec",
    "checksum",
    "CorruptRecord",
    "FIGURES",
    "Heartbeat",
    "ResultStore",
    "rows_from_records",
    "run_cell",
    "SCHEMA_VERSION",
    "system_config",
]
