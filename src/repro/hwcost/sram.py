"""An analytical SRAM area/power/energy model (the CACTI stand-in).

CACTI is a closed-form analytical model at heart: array area scales with
bit count times a cell size for the technology node, plus a periphery
factor (decoders, sense amplifiers, drivers) that depends on how the bits
are organized; leakage scales with transistor count; per-access dynamic
energy scales with the bits switched on an access.  We implement exactly
that closed form, calibrated at a 22 nm-like node (§5.4 uses CACTI-P at
22 nm).  Absolute numbers are indicative; the experiment reports *ratios*
(percentage increase over a baseline structure), which depend only on bit
counts and organization — the quantity Table 3 tabulates.
"""

from __future__ import annotations

from dataclasses import dataclass

#: 6T SRAM cell area at a 22nm-like node (µm² per bit).
CELL_AREA_UM2 = 0.046
#: Leakage per bit (µW) at nominal corner.
CELL_LEAKAGE_UW = 0.0105
#: Dynamic read energy per bit accessed (fJ).
READ_ENERGY_FJ_PER_BIT = 2.4


@dataclass(frozen=True)
class SRAMArray:
    """One SRAM-based structure.

    Attributes:
        name: label for reports.
        entries: number of rows.
        bits_per_entry: payload width.
        access_bits: bits actually read/switched on a typical access
            (defaults to one full entry).
        periphery_factor: multiplier covering decoders/sense-amps/ports;
            small side-car arrays (like MTE lock sidecars) pay
            proportionally more periphery than large monolithic arrays.
        ports: read/write port count (area and leakage scale with it).
    """

    name: str
    entries: int
    bits_per_entry: int
    access_bits: int = 0
    periphery_factor: float = 1.15
    ports: int = 1

    @property
    def total_bits(self) -> int:
        return self.entries * self.bits_per_entry

    @property
    def area_um2(self) -> float:
        """Array area including periphery and porting."""
        port_scale = 1.0 + 0.35 * (self.ports - 1)
        return (self.total_bits * CELL_AREA_UM2
                * self.periphery_factor * port_scale)

    @property
    def leakage_uw(self) -> float:
        """Static power (leakage) of the array."""
        port_scale = 1.0 + 0.20 * (self.ports - 1)
        return self.total_bits * CELL_LEAKAGE_UW * port_scale

    @property
    def read_energy_fj(self) -> float:
        """Dynamic energy of one access."""
        bits = self.access_bits or self.bits_per_entry
        return bits * READ_ENERGY_FJ_PER_BIT


@dataclass(frozen=True)
class LogicBlock:
    """Synthesized random logic (the Design Compiler stand-in).

    Sized in NAND2-equivalent gates; at 22 nm a NAND2 is ~0.5 µm² with
    ~0.006 µW leakage.  The TSH and the tag-check comparators are a few
    hundred gates each.
    """

    name: str
    gates: int
    #: Fraction of gates switching on a typical cycle.
    activity: float = 0.1

    GATE_AREA_UM2 = 0.5
    GATE_LEAKAGE_UW = 0.006
    GATE_ENERGY_FJ = 1.1

    @property
    def area_um2(self) -> float:
        return self.gates * self.GATE_AREA_UM2

    @property
    def leakage_uw(self) -> float:
        return self.gates * self.GATE_LEAKAGE_UW

    @property
    def read_energy_fj(self) -> float:
        return self.gates * self.activity * self.GATE_ENERGY_FJ
