"""Table 3: hardware cost of ARM MTE, SpecASan, and SpecASan+CFI.

The paper sizes SRAM structures with CACTI-P at 22 nm and synthesizes the
new logic (tag-check comparators, the TSH) with Design Compiler, then
reports *percentage increases* per affected component plus core-level
totals.  We reproduce that flow with the analytical models in
:mod:`repro.hwcost.sram`:

- each affected component is a baseline :class:`SRAMArray` plus the bits a
  mechanism adds (lock sidecars, ``tcs``/SSA/MSHR flag bits) and any new
  :class:`LogicBlock`;
- percentages are ratios of the modelled area/leakage/energy — they depend
  only on bit counts and organization, which Table 2's geometry fixes;
- core totals relate the added area to a core envelope calibrated so the
  ARM MTE row matches its published total (0.17%), after which the
  SpecASan and SpecASan+CFI totals are *predictions* of the model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.config import CORTEX_A76, SystemConfig
from repro.hwcost.sram import LogicBlock, SRAMArray

#: Mechanisms, in Table 3 column order.
MECHANISMS = ("ARM MTE", "SpecASan", "SpecASan+CFI")


@dataclass
class ComponentCost:
    """Modelled baseline plus per-mechanism additions for one component."""

    name: str
    baseline_arrays: List[SRAMArray]
    additions: Dict[str, List[object]] = field(default_factory=dict)

    def _sum(self, items: List[object], attr: str) -> float:
        return sum(getattr(item, attr) for item in items)

    def baseline(self, attr: str) -> float:
        return self._sum(self.baseline_arrays, attr)

    def added(self, mechanism: str, attr: str) -> float:
        total = 0.0
        for which, items in self.additions.items():
            if _included(which, mechanism):
                total += self._sum(items, attr)
        return total

    def overhead_pct(self, mechanism: str, attr: str) -> float:
        base = self.baseline(attr)
        return 100.0 * self.added(mechanism, attr) / base if base else 0.0


def _included(which: str, mechanism: str) -> bool:
    """Additions tagged "mte" appear in every column; "specasan" in the
    SpecASan columns; "cfi" only in SpecASan+CFI."""
    if which == "mte":
        return True
    if which == "specasan":
        return mechanism in ("SpecASan", "SpecASan+CFI")
    if which == "cfi":
        return mechanism == "SpecASan+CFI"
    raise ValueError(which)


def build_components(config: SystemConfig = CORTEX_A76) -> List[ComponentCost]:
    """Instantiate the Table 3 component models from a system config."""
    line_bits = config.l1d.line_bytes * 8
    lines = config.l1d.size_bytes // config.l1d.line_bytes
    granules_per_line = config.l1d.line_bytes // config.mte.granule_bytes
    lock_bits = granules_per_line * config.mte.tag_bits

    l1d = ComponentCost(
        "L1 D-Cache",
        baseline_arrays=[SRAMArray(
            "l1d", entries=lines, bits_per_entry=line_bits + 29,
            access_bits=line_bits + 29)],
        additions={
            # ARM MTE: the per-line allocation-tag sidecar, its own small
            # (periphery-heavy) array looked up with the tag match; an
            # access reads one granule's 4-bit lock.
            "mte": [SRAMArray("l1d-locks", entries=lines,
                              bits_per_entry=lock_bits,
                              access_bits=config.mte.tag_bits,
                              periphery_factor=1.45)],
        })

    lfb_entry_bits = line_bits + 48  # data + address/status metadata
    lfb = ComponentCost(
        "LFB",
        baseline_arrays=[SRAMArray(
            "lfb", entries=config.memory.lfb_entries,
            bits_per_entry=lfb_entry_bits, access_bits=lfb_entry_bits)],
        additions={
            # SpecASan extends LFB entries with the line's locks (§3.3.3).
            "specasan": [SRAMArray(
                "lfb-locks", entries=config.memory.lfb_entries,
                bits_per_entry=lock_bits, access_bits=config.mte.tag_bits,
                periphery_factor=1.45)],
        })

    core = config.core
    rob_bits, lsq_bits, mshr_bits = 240, 250, 120
    backend = ComponentCost(
        "ROB/LSQ/MSHR",
        baseline_arrays=[
            SRAMArray("rob", entries=core.rob_entries,
                      bits_per_entry=rob_bits, access_bits=rob_bits,
                      ports=4),
            SRAMArray("lq", entries=core.lq_entries,
                      bits_per_entry=lsq_bits, access_bits=lsq_bits,
                      ports=2),
            SRAMArray("sq", entries=core.sq_entries,
                      bits_per_entry=lsq_bits, access_bits=lsq_bits,
                      ports=2),
            SRAMArray("mshr", entries=config.l1d.mshr_entries
                      + config.l2.mshr_entries,
                      bits_per_entry=mshr_bits, access_bits=mshr_bits),
        ],
        additions={
            # SpecASan: 2-bit tcs per LQ/SQ entry, 1-bit SSA per ROB entry,
            # 1-bit unsafe flag per MSHR (§3.3), plus the TSH state machine.
            "specasan": [
                SRAMArray("tcs", entries=core.lq_entries + core.sq_entries,
                          bits_per_entry=2, access_bits=2, ports=2),
                SRAMArray("ssa", entries=core.rob_entries, bits_per_entry=1,
                          access_bits=1, ports=4),
                SRAMArray("mshr-unsafe",
                          entries=config.l1d.mshr_entries
                          + config.l2.mshr_entries,
                          bits_per_entry=1, access_bits=1),
                LogicBlock("tsh", gates=30, activity=0.2),
            ],
        })

    cfi = ComponentCost(
        "CFI Extensions",
        baseline_arrays=[_core_envelope(config)],
        additions={
            # SpecCFI: a 64-entry shadow stack and the landing-pad
            # validation comparators in the fetch path.
            "cfi": [
                SRAMArray("shadow-stack", entries=64, bits_per_entry=48,
                          access_bits=48, periphery_factor=1.3),
                LogicBlock("cfi-check", gates=220, activity=0.3),
            ],
        })

    return [l1d, lfb, backend, cfi]


def _core_envelope(config: SystemConfig) -> SRAMArray:
    """A core-sized pseudo-array used as the denominator for core totals.

    Calibrated so the ARM MTE row's total-core area overhead reproduces its
    published value (0.17%): the L1D lock sidecar is MTE's only in-core
    addition, fixing the envelope at ``sidecar_area / 0.0017``.  The
    SpecASan and SpecASan+CFI totals are then model outputs.
    """
    lines = config.l1d.size_bytes // config.l1d.line_bytes
    lock_bits = (config.l1d.line_bytes // config.mte.granule_bytes
                 * config.mte.tag_bits)
    sidecar = SRAMArray("cal", entries=lines, bits_per_entry=lock_bits,
                        access_bits=4, periphery_factor=1.45)
    area = sidecar.area_um2 / 0.0017
    # Express the envelope as an equivalent array so ratios type-check.
    # Its per-cycle dynamic activity (~45 pJ) stands in for McPAT's core
    # dynamic power when relating added logic energy to the whole core.
    bits = int(area / (SRAMArray("x", 1, 1).area_um2))
    return SRAMArray("core-envelope", entries=1, bits_per_entry=bits,
                     access_bits=19_000)


@dataclass
class Table3Row:
    component: str
    metric: str
    values: Dict[str, float]


def compute_table3(config: SystemConfig = CORTEX_A76) -> List[Table3Row]:
    """All rows of Table 3 (component × metric × mechanism)."""
    components = build_components(config)
    l1d, lfb, backend, cfi = components
    rows: List[Table3Row] = []
    metric_attrs = [("Area Overhead (%)", "area_um2"),
                    ("Static Power (%)", "leakage_uw"),
                    ("Dynamic Energy (%)", "read_energy_fj")]
    for component in components:
        for label, attr in metric_attrs:
            rows.append(Table3Row(component.name, label, {
                mech: round(component.overhead_pct(mech, attr), 2)
                for mech in MECHANISMS}))

    # Core-level totals: every mechanism's absolute additions over the
    # calibrated core envelope (the TSH and response plumbing count as
    # distributed core logic for SpecASan).
    envelope = cfi.baseline("area_um2")
    envelope_leak = cfi.baseline("leakage_uw")
    plumbing = LogicBlock("specasan-plumbing", gates=560, activity=0.15)
    for label, attr, env in [("Total Core Area Overhead (%)", "area_um2", envelope),
                             ("Total Core Static Power (%)", "leakage_uw", envelope_leak)]:
        values = {}
        for mech in MECHANISMS:
            added = sum(c.added(mech, attr) for c in components)
            if mech in ("SpecASan", "SpecASan+CFI"):
                added += getattr(plumbing, attr)
            values[mech] = round(100.0 * added / env, 2)
        rows.append(Table3Row("Total Core", label, values))
    return rows


def render_table3(rows: List[Table3Row]) -> str:
    """Format like the paper's Table 3."""
    header = (f"{'Component':16s}{'Metric':28s}"
              + "".join(f"{m:>14s}" for m in MECHANISMS))
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(f"{row.component:16s}{row.metric:28s}"
                     + "".join(f"{row.values[m]:14.2f}" for m in MECHANISMS))
    return "\n".join(lines)
