"""Hardware cost modelling for Table 3 (the CACTI/McPAT/DC stand-in)."""

from repro.hwcost.sram import LogicBlock, SRAMArray
from repro.hwcost.table3 import (
    build_components,
    ComponentCost,
    compute_table3,
    MECHANISMS,
    render_table3,
    Table3Row,
)

__all__ = [
    "build_components",
    "ComponentCost",
    "compute_table3",
    "LogicBlock",
    "MECHANISMS",
    "render_table3",
    "SRAMArray",
    "Table3Row",
]
