"""Instruction definitions for the AArch64-flavoured ISA.

Each :class:`Instruction` is a *static* instruction: an opcode plus register
and immediate operands, as produced by the assembler or the program builder.
The pipeline wraps these in dynamic instances carrying sequence numbers and
speculative state.

The subset models everything the paper's PoCs and workloads need:

- integer ALU ops (``ADD``/``SUB``/logicals/shifts/``MUL``/``UDIV``),
- flag-setting compare and conditional branches,
- direct, conditional, and *indirect* branches plus calls/returns (the
  indirect forms are what Spectre v2/v5 and SpecCFI exercise),
- loads and stores with immediate or register offsets,
- the MTE tag-management instructions ``IRG``/``ADDG``/``SUBG``/``STG``/
  ``LDG`` (§5.2 lists these as the supported extension instructions),
- ``BTI`` landing pads for SpecCFI, and the ``SB`` speculation barrier.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.isa.registers import reg_name, XZR

#: Pseudo-register index used for the NZCV flags so the rename machinery can
#: track CMP -> B.cond dependencies exactly like data dependencies.
FLAGS_REG = 33
#: Total register namespace seen by the renamer (X0..X30, XZR, SP, FLAGS).
RENAME_REGS = 34

#: Byte size of every instruction (fixed-width ISA).
INSTR_BYTES = 4


class Opcode(enum.Enum):
    """Every opcode understood by the simulator."""

    # ALU
    ADD = "ADD"
    SUB = "SUB"
    AND = "AND"
    ORR = "ORR"
    EOR = "EOR"
    LSL = "LSL"
    LSR = "LSR"
    ASR = "ASR"
    MUL = "MUL"
    UDIV = "UDIV"
    MOV = "MOV"
    # Flag-setting compare (SUBS with discarded result).
    CMP = "CMP"
    # Control flow
    B = "B"
    B_COND = "B.COND"
    CBZ = "CBZ"
    CBNZ = "CBNZ"
    BR = "BR"
    BL = "BL"
    BLR = "BLR"
    RET = "RET"
    # Memory
    LDR = "LDR"
    LDRB = "LDRB"
    STR = "STR"
    STRB = "STRB"
    # MTE tag management (§2.3, §5.2)
    IRG = "IRG"
    ADDG = "ADDG"
    SUBG = "SUBG"
    STG = "STG"
    LDG = "LDG"
    # CFI landing pad (ARM BTI), used by SpecCFI.
    BTI = "BTI"
    # Speculation barrier (used by software fence mitigations).
    SB = "SB"
    NOP = "NOP"
    # Simulator control: stop the core cleanly.
    HALT = "HALT"


class InstrClass(enum.Enum):
    """Coarse classification used by issue/scheduling and the defenses."""

    ALU = "alu"
    MUL = "mul"
    DIV = "div"
    LOAD = "load"
    STORE = "store"
    BRANCH = "branch"
    MTE = "mte"
    BARRIER = "barrier"
    NOP = "nop"
    HALT = "halt"


class Cond(enum.Enum):
    """Condition codes for ``B.cond`` (subset of AArch64)."""

    EQ = "EQ"  # Z
    NE = "NE"  # !Z
    LO = "LO"  # !C (unsigned lower)
    HS = "HS"  # C  (unsigned higher-or-same)
    LT = "LT"  # N != V
    GE = "GE"  # N == V
    LE = "LE"  # Z or N != V
    GT = "GT"  # !Z and N == V
    MI = "MI"  # N
    PL = "PL"  # !N


_CLASS_BY_OP = {
    Opcode.ADD: InstrClass.ALU, Opcode.SUB: InstrClass.ALU,
    Opcode.AND: InstrClass.ALU, Opcode.ORR: InstrClass.ALU,
    Opcode.EOR: InstrClass.ALU, Opcode.LSL: InstrClass.ALU,
    Opcode.LSR: InstrClass.ALU, Opcode.ASR: InstrClass.ALU,
    Opcode.MOV: InstrClass.ALU, Opcode.CMP: InstrClass.ALU,
    Opcode.MUL: InstrClass.MUL, Opcode.UDIV: InstrClass.DIV,
    Opcode.B: InstrClass.BRANCH, Opcode.B_COND: InstrClass.BRANCH,
    Opcode.CBZ: InstrClass.BRANCH, Opcode.CBNZ: InstrClass.BRANCH,
    Opcode.BR: InstrClass.BRANCH, Opcode.BL: InstrClass.BRANCH,
    Opcode.BLR: InstrClass.BRANCH, Opcode.RET: InstrClass.BRANCH,
    Opcode.LDR: InstrClass.LOAD, Opcode.LDRB: InstrClass.LOAD,
    Opcode.STR: InstrClass.STORE, Opcode.STRB: InstrClass.STORE,
    Opcode.IRG: InstrClass.MTE, Opcode.ADDG: InstrClass.MTE,
    Opcode.SUBG: InstrClass.MTE, Opcode.LDG: InstrClass.MTE,
    Opcode.STG: InstrClass.STORE,  # STG writes tag storage like a store
    Opcode.BTI: InstrClass.NOP,
    Opcode.SB: InstrClass.BARRIER,
    Opcode.NOP: InstrClass.NOP,
    Opcode.HALT: InstrClass.HALT,
}

_CONDITIONAL = {Opcode.B_COND, Opcode.CBZ, Opcode.CBNZ}
_INDIRECT = {Opcode.BR, Opcode.BLR, Opcode.RET}
_CALLS = {Opcode.BL, Opcode.BLR}


@dataclass
class Instruction:
    """One static instruction.

    Operand conventions (mirroring AArch64 assembly):

    - ``rd``: destination register.
    - ``rn``: first source / base address register.
    - ``rm``: second source / index register (``None`` when the second
      operand is the immediate ``imm``).
    - ``imm``: immediate operand (ALU immediate, load/store offset, or the
      ADDG/SUBG address offset).
    - ``tag_imm``: the tag-offset operand of ``ADDG``/``SUBG``.
    - ``cond``: condition for ``B.cond``.
    - ``target``: branch target label; resolved to ``target_addr`` when the
      program is linked.
    """

    op: Opcode
    rd: Optional[int] = None
    rn: Optional[int] = None
    rm: Optional[int] = None
    imm: Optional[int] = None
    tag_imm: Optional[int] = None
    cond: Optional[Cond] = None
    target: Optional[str] = None
    target_addr: Optional[int] = None
    #: Filled in when the instruction is placed into a Program.
    address: int = 0
    #: Optional free-form annotation (used by gadget builders for tracing).
    note: str = ""
    # Cached dependency sets, computed lazily.
    _srcs: Optional[Tuple[int, ...]] = field(default=None, repr=False)
    _dsts: Optional[Tuple[int, ...]] = field(default=None, repr=False)

    # -- classification -----------------------------------------------------

    @property
    def klass(self) -> InstrClass:
        """The scheduling class of this instruction."""
        return _CLASS_BY_OP[self.op]

    @property
    def is_load(self) -> bool:
        return self.op in (Opcode.LDR, Opcode.LDRB, Opcode.LDG)

    @property
    def is_store(self) -> bool:
        return self.op in (Opcode.STR, Opcode.STRB, Opcode.STG)

    @property
    def is_memory(self) -> bool:
        return self.is_load or self.is_store

    @property
    def is_branch(self) -> bool:
        return self.klass is InstrClass.BRANCH

    @property
    def is_conditional_branch(self) -> bool:
        return self.op in _CONDITIONAL

    @property
    def is_indirect_branch(self) -> bool:
        return self.op in _INDIRECT

    @property
    def is_call(self) -> bool:
        return self.op in _CALLS

    @property
    def is_return(self) -> bool:
        return self.op is Opcode.RET

    @property
    def is_barrier(self) -> bool:
        return self.op is Opcode.SB

    @property
    def memory_bytes(self) -> int:
        """Access width in bytes for loads/stores (granule-wide for STG/LDG)."""
        if self.op in (Opcode.LDRB, Opcode.STRB):
            return 1
        if self.op in (Opcode.STG, Opcode.LDG):
            return 16
        return 8

    # -- register dependencies ----------------------------------------------

    @property
    def src_regs(self) -> Tuple[int, ...]:
        """Architectural registers this instruction reads (XZR excluded)."""
        if self._srcs is None:
            self._srcs = self._compute_srcs()
        return self._srcs

    @property
    def dst_regs(self) -> Tuple[int, ...]:
        """Architectural registers this instruction writes (XZR excluded)."""
        if self._dsts is None:
            self._dsts = self._compute_dsts()
        return self._dsts

    def _compute_srcs(self) -> Tuple[int, ...]:
        srcs = []
        op = self.op
        if op is Opcode.B_COND:
            srcs.append(FLAGS_REG)
        elif op is Opcode.RET:
            srcs.append(30)  # LR
        elif op in (Opcode.CBZ, Opcode.CBNZ, Opcode.BR, Opcode.BLR):
            if self.rn is not None:
                srcs.append(self.rn)
        elif op is Opcode.STG:
            # STG reads the tag source (rd by our convention) and the base.
            if self.rd is not None:
                srcs.append(self.rd)
            if self.rn is not None:
                srcs.append(self.rn)
            if self.rm is not None:
                srcs.append(self.rm)
        elif self.is_store:
            if self.rd is not None:  # store data register
                srcs.append(self.rd)
            if self.rn is not None:
                srcs.append(self.rn)
            if self.rm is not None:
                srcs.append(self.rm)
        else:
            if self.rn is not None:
                srcs.append(self.rn)
            if self.rm is not None:
                srcs.append(self.rm)
        return tuple(s for s in srcs if s != XZR)

    def _compute_dsts(self) -> Tuple[int, ...]:
        dsts = []
        op = self.op
        if op is Opcode.CMP:
            dsts.append(FLAGS_REG)
        elif op in (Opcode.BL, Opcode.BLR):
            dsts.append(30)  # LR
        elif self.is_store or self.is_branch or op in (
                Opcode.SB, Opcode.NOP, Opcode.BTI, Opcode.HALT):
            pass
        else:
            if self.rd is not None:
                dsts.append(self.rd)
        return tuple(d for d in dsts if d != XZR)

    # -- rendering ------------------------------------------------------------

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return self.render()

    def render(self) -> str:
        """Render back to assembly text."""
        op = self.op
        r = reg_name
        if op is Opcode.B_COND:
            return f"B.{self.cond.value} {self.target}"
        if op in (Opcode.B, Opcode.BL):
            return f"{op.value} {self.target}"
        if op in (Opcode.CBZ, Opcode.CBNZ):
            return f"{op.value} {r(self.rn)}, {self.target}"
        if op in (Opcode.BR, Opcode.BLR):
            return f"{op.value} {r(self.rn)}"
        if op in (Opcode.RET, Opcode.NOP, Opcode.BTI, Opcode.SB, Opcode.HALT):
            return op.value
        if op is Opcode.CMP:
            rhs = r(self.rm) if self.rm is not None else f"#{self.imm}"
            return f"CMP {r(self.rn)}, {rhs}"
        if op is Opcode.MOV:
            rhs = r(self.rn) if self.rn is not None else f"#{self.imm}"
            return f"MOV {r(self.rd)}, {rhs}"
        if self.is_memory and op is not Opcode.IRG:
            data = r(self.rd)
            if self.rm is not None:
                addr = f"[{r(self.rn)}, {r(self.rm)}]"
            elif self.imm:
                addr = f"[{r(self.rn)}, #{self.imm}]"
            else:
                addr = f"[{r(self.rn)}]"
            return f"{op.value} {data}, {addr}"
        if op is Opcode.IRG:
            return f"IRG {r(self.rd)}, {r(self.rn)}"
        if op in (Opcode.ADDG, Opcode.SUBG):
            return (f"{op.value} {r(self.rd)}, {r(self.rn)}, "
                    f"#{self.imm or 0}, #{self.tag_imm or 0}")
        rhs = r(self.rm) if self.rm is not None else f"#{self.imm}"
        return f"{op.value} {r(self.rd)}, {r(self.rn)}, {rhs}"
