"""Fluent programmatic builder for simulator programs.

Workload generators and attack gadgets construct programs through this API
rather than via text assembly, e.g.::

    b = ProgramBuilder()
    array1 = b.bytes_segment("array1", 0x40000, b"\\x01" * 16, tag=0x0)
    b.li("X2", array1.address)
    b.label("loop")
    b.ldr("X5", "X2")
    b.add("X2", "X2", imm=8)
    b.cmp("X2", imm=array1.end)
    b.b_cond("LO", "loop")
    b.halt()
    program = b.build()

All register arguments accept either names (``"X5"``) or indices.
"""

from __future__ import annotations

import struct
from typing import Optional, Sequence, Union

from repro.isa.instructions import Cond, Instruction, Opcode
from repro.isa.program import DataSegment, Program, TEXT_BASE
from repro.isa.registers import reg_index

Reg = Union[str, int]


def _r(reg: Optional[Reg]) -> Optional[int]:
    if reg is None:
        return None
    if isinstance(reg, int):
        return reg
    return reg_index(reg)


class ProgramBuilder:
    """Builds a :class:`Program` one instruction at a time."""

    def __init__(self, base_address: int = TEXT_BASE):
        self._program = Program(base_address=base_address)
        self._auto_label = 0

    # -- segments -------------------------------------------------------------

    def bytes_segment(self, name: str, address: int, data: bytes,
                      tag: Optional[int] = None) -> DataSegment:
        """Add an initial data segment of raw bytes."""
        return self._program.add_segment(DataSegment(name, address, data, tag))

    def words_segment(self, name: str, address: int, words: Sequence[int],
                      tag: Optional[int] = None) -> DataSegment:
        """Add a segment of little-endian 64-bit words."""
        data = b"".join(struct.pack("<Q", w & (2**64 - 1)) for w in words)
        return self.bytes_segment(name, address, data, tag)

    def zero_segment(self, name: str, address: int, size: int,
                     tag: Optional[int] = None) -> DataSegment:
        """Add a zero-initialized segment of ``size`` bytes."""
        return self.bytes_segment(name, address, bytes(size), tag)

    # -- labels ---------------------------------------------------------------

    def label(self, name: str) -> str:
        """Define ``name`` at the current position and return it."""
        self._program.label(name)
        return name

    def fresh_label(self, prefix: str = "L") -> str:
        """Generate a unique label name (not yet placed)."""
        self._auto_label += 1
        return f".{prefix}{self._auto_label}"

    def current_address(self) -> int:
        """The address the *next* appended instruction will occupy."""
        from repro.isa.instructions import INSTR_BYTES
        return (self._program.base_address
                + len(self._program.instructions) * INSTR_BYTES)

    def pad_to(self, address: int) -> None:
        """Emit NOPs until :meth:`current_address` equals ``address``."""
        if address < self.current_address() or address % 4:
            raise ValueError(f"cannot pad backwards to {address:#x}")
        while self.current_address() < address:
            self.nop()

    # -- ALU ------------------------------------------------------------------

    def _alu(self, op: Opcode, rd: Reg, rn: Reg, rm: Optional[Reg],
             imm: Optional[int], note: str = "") -> Instruction:
        if (rm is None) == (imm is None):
            raise ValueError(f"{op.value}: exactly one of rm/imm required")
        return self._program.add(Instruction(
            op, rd=_r(rd), rn=_r(rn), rm=_r(rm), imm=imm, note=note))

    def add(self, rd: Reg, rn: Reg, rm: Optional[Reg] = None,
            imm: Optional[int] = None, note: str = "") -> Instruction:
        return self._alu(Opcode.ADD, rd, rn, rm, imm, note)

    def sub(self, rd: Reg, rn: Reg, rm: Optional[Reg] = None,
            imm: Optional[int] = None, note: str = "") -> Instruction:
        return self._alu(Opcode.SUB, rd, rn, rm, imm, note)

    def and_(self, rd: Reg, rn: Reg, rm: Optional[Reg] = None,
             imm: Optional[int] = None, note: str = "") -> Instruction:
        return self._alu(Opcode.AND, rd, rn, rm, imm, note)

    def orr(self, rd: Reg, rn: Reg, rm: Optional[Reg] = None,
            imm: Optional[int] = None, note: str = "") -> Instruction:
        return self._alu(Opcode.ORR, rd, rn, rm, imm, note)

    def eor(self, rd: Reg, rn: Reg, rm: Optional[Reg] = None,
            imm: Optional[int] = None, note: str = "") -> Instruction:
        return self._alu(Opcode.EOR, rd, rn, rm, imm, note)

    def lsl(self, rd: Reg, rn: Reg, rm: Optional[Reg] = None,
            imm: Optional[int] = None, note: str = "") -> Instruction:
        return self._alu(Opcode.LSL, rd, rn, rm, imm, note)

    def lsr(self, rd: Reg, rn: Reg, rm: Optional[Reg] = None,
            imm: Optional[int] = None, note: str = "") -> Instruction:
        return self._alu(Opcode.LSR, rd, rn, rm, imm, note)

    def asr(self, rd: Reg, rn: Reg, rm: Optional[Reg] = None,
            imm: Optional[int] = None, note: str = "") -> Instruction:
        return self._alu(Opcode.ASR, rd, rn, rm, imm, note)

    def mul(self, rd: Reg, rn: Reg, rm: Reg, note: str = "") -> Instruction:
        return self._alu(Opcode.MUL, rd, rn, rm, None, note)

    def udiv(self, rd: Reg, rn: Reg, rm: Reg, note: str = "") -> Instruction:
        return self._alu(Opcode.UDIV, rd, rn, rm, None, note)

    def mov(self, rd: Reg, rn: Reg, note: str = "") -> Instruction:
        return self._program.add(Instruction(
            Opcode.MOV, rd=_r(rd), rn=_r(rn), note=note))

    def li(self, rd: Reg, value: int, note: str = "") -> Instruction:
        """Load a 64-bit immediate (modelled as one MOV)."""
        return self._program.add(Instruction(
            Opcode.MOV, rd=_r(rd), imm=value & (2**64 - 1), note=note))

    def cmp(self, rn: Reg, rm: Optional[Reg] = None,
            imm: Optional[int] = None, note: str = "") -> Instruction:
        if (rm is None) == (imm is None):
            raise ValueError("CMP: exactly one of rm/imm required")
        return self._program.add(Instruction(
            Opcode.CMP, rn=_r(rn), rm=_r(rm), imm=imm, note=note))

    # -- control flow -----------------------------------------------------------

    def b(self, target: str, note: str = "") -> Instruction:
        return self._program.add(Instruction(Opcode.B, target=target, note=note))

    def b_cond(self, cond: Union[str, Cond], target: str,
               note: str = "") -> Instruction:
        cond = Cond[cond] if isinstance(cond, str) else cond
        return self._program.add(Instruction(
            Opcode.B_COND, cond=cond, target=target, note=note))

    def cbz(self, rn: Reg, target: str, note: str = "") -> Instruction:
        return self._program.add(Instruction(
            Opcode.CBZ, rn=_r(rn), target=target, note=note))

    def cbnz(self, rn: Reg, target: str, note: str = "") -> Instruction:
        return self._program.add(Instruction(
            Opcode.CBNZ, rn=_r(rn), target=target, note=note))

    def br(self, rn: Reg, note: str = "") -> Instruction:
        return self._program.add(Instruction(Opcode.BR, rn=_r(rn), note=note))

    def bl(self, target: str, note: str = "") -> Instruction:
        return self._program.add(Instruction(Opcode.BL, target=target, note=note))

    def blr(self, rn: Reg, note: str = "") -> Instruction:
        return self._program.add(Instruction(Opcode.BLR, rn=_r(rn), note=note))

    def ret(self, note: str = "") -> Instruction:
        return self._program.add(Instruction(Opcode.RET, note=note))

    # -- memory -----------------------------------------------------------------

    def _mem(self, op: Opcode, rd: Reg, rn: Reg, rm: Optional[Reg],
             imm: int, note: str) -> Instruction:
        return self._program.add(Instruction(
            op, rd=_r(rd), rn=_r(rn), rm=_r(rm),
            imm=None if rm is not None else imm, note=note))

    def ldr(self, rd: Reg, rn: Reg, rm: Optional[Reg] = None,
            imm: int = 0, note: str = "") -> Instruction:
        return self._mem(Opcode.LDR, rd, rn, rm, imm, note)

    def ldrb(self, rd: Reg, rn: Reg, rm: Optional[Reg] = None,
             imm: int = 0, note: str = "") -> Instruction:
        return self._mem(Opcode.LDRB, rd, rn, rm, imm, note)

    def str_(self, rd: Reg, rn: Reg, rm: Optional[Reg] = None,
             imm: int = 0, note: str = "") -> Instruction:
        return self._mem(Opcode.STR, rd, rn, rm, imm, note)

    def strb(self, rd: Reg, rn: Reg, rm: Optional[Reg] = None,
             imm: int = 0, note: str = "") -> Instruction:
        return self._mem(Opcode.STRB, rd, rn, rm, imm, note)

    # -- MTE ----------------------------------------------------------------------

    def irg(self, rd: Reg, rn: Reg, note: str = "") -> Instruction:
        """Insert a random allocation tag into the pointer in ``rn``."""
        return self._program.add(Instruction(
            Opcode.IRG, rd=_r(rd), rn=_r(rn), note=note))

    def addg(self, rd: Reg, rn: Reg, offset: int = 0, tag_offset: int = 0,
             note: str = "") -> Instruction:
        """Add ``offset`` to the pointer and ``tag_offset`` to its key."""
        return self._program.add(Instruction(
            Opcode.ADDG, rd=_r(rd), rn=_r(rn), imm=offset,
            tag_imm=tag_offset, note=note))

    def subg(self, rd: Reg, rn: Reg, offset: int = 0, tag_offset: int = 0,
             note: str = "") -> Instruction:
        return self._program.add(Instruction(
            Opcode.SUBG, rd=_r(rd), rn=_r(rn), imm=offset,
            tag_imm=tag_offset, note=note))

    def stg(self, rt: Reg, rn: Reg, imm: int = 0, note: str = "") -> Instruction:
        """Store ``rt``'s key as the allocation tag of the granule at ``rn+imm``."""
        return self._program.add(Instruction(
            Opcode.STG, rd=_r(rt), rn=_r(rn), imm=imm, note=note))

    def ldg(self, rd: Reg, rn: Reg, note: str = "") -> Instruction:
        """Load the allocation tag of the granule at ``rn`` into ``rd``'s key."""
        return self._program.add(Instruction(
            Opcode.LDG, rd=_r(rd), rn=_r(rn), note=note))

    # -- misc -------------------------------------------------------------------

    def bti(self, note: str = "") -> Instruction:
        """BTI landing pad (valid indirect-branch target under SpecCFI)."""
        return self._program.add(Instruction(Opcode.BTI, note=note))

    def sb(self, note: str = "") -> Instruction:
        """Speculation barrier."""
        return self._program.add(Instruction(Opcode.SB, note=note))

    def nop(self, note: str = "") -> Instruction:
        return self._program.add(Instruction(Opcode.NOP, note=note))

    def nops(self, count: int) -> None:
        for _ in range(count):
            self.nop()

    def halt(self, note: str = "") -> Instruction:
        return self._program.add(Instruction(Opcode.HALT, note=note))

    # -- finish ------------------------------------------------------------------

    def entry(self, label: str) -> None:
        """Set the program entry point."""
        self._program.entry_label = label

    def build(self) -> Program:
        """Link and return the program."""
        return self._program.link()
