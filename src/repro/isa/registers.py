"""Register file naming for the AArch64-flavoured ISA.

The integer register file has 32 architectural registers: ``X0``-``X30`` plus
the zero register ``XZR`` (index 31), which reads as zero and discards
writes.  Following AArch64 convention, ``X29`` doubles as the frame pointer,
``X30`` as the link register.  The stack pointer is modelled as a separate
register ``SP`` with index 32 so that the simulator can rename it uniformly.
"""

from __future__ import annotations

from repro.errors import AssemblerError

#: Architectural zero register (reads 0, writes ignored).
XZR = 31
#: Frame pointer alias (X29).
FP = 29
#: Link register written by BL/BLR (X30).
LR = 30
#: Stack pointer, modelled as an extra architectural register.
SP = 32
#: Total number of architectural integer registers, including SP.
NUM_REGS = 33

_ALIASES = {"XZR": XZR, "WZR": XZR, "FP": FP, "LR": LR, "SP": SP}


def reg_index(name: str) -> int:
    """Parse a register name (``X0``-``X30``, ``XZR``, ``FP``, ``LR``, ``SP``).

    Raises:
        AssemblerError: if the name is not a valid register.
    """
    upper = name.strip().upper()
    if upper in _ALIASES:
        return _ALIASES[upper]
    if upper.startswith("X") and upper[1:].isdigit():
        index = int(upper[1:])
        if 0 <= index <= 30:
            return index
    raise AssemblerError(f"unknown register {name!r}")


def reg_name(index: int) -> str:
    """Render a register index back to its canonical assembly name."""
    if index == XZR:
        return "XZR"
    if index == SP:
        return "SP"
    if 0 <= index <= 30:
        return f"X{index}"
    raise AssemblerError(f"register index {index} out of range")
