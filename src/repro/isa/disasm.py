"""Disassembler / pretty-printer: the inverse of :mod:`repro.isa.assembler`.

:func:`disassemble` renders a linked :class:`~repro.isa.program.Program`
back to assembler-accepted source text, so synthesized witness programs
(:mod:`repro.analysis.witness`) and repaired programs
(:mod:`repro.analysis.repair`) can be dumped as readable ``.s`` files for
bug reports and re-assembled bit-for-bit.

Round-trip contract (tested property-style in ``tests/isa/test_disasm.py``):

- ``assemble(disassemble(p))`` produces a program with the same
  :func:`signature` as ``p`` — identical opcode/operand/address structure,
  entry point, and data image.  Label *names* are not preserved exactly:
  :class:`~repro.isa.builder.ProgramBuilder` emits ``.L1``-style fresh
  labels that the assembler grammar rejects (labels must start with a
  letter or underscore), so the disassembler deterministically renames any
  unrepresentable label.
- ``disassemble(assemble(disassemble(p)), notes=False)`` is a fixed point:
  instruction notes are annotations, not program state, and are dropped by
  assembly, so text-level idempotence is only promised without them.
"""

from __future__ import annotations

import re
from typing import Dict, List, Tuple

from repro.errors import AssemblerError
from repro.isa.instructions import INSTR_BYTES, Instruction, Opcode
from repro.isa.program import Program

#: Labels the assembler grammar accepts (see ``assembler._LABEL_RE``).
_VALID_LABEL = re.compile(r"^[A-Za-z_][\w.$]*$")


def _safe_label_names(program: Program) -> Dict[str, str]:
    """Deterministic original-name -> assemblable-name mapping.

    Valid names pass through; invalid ones (``.L1``…) are sanitized and
    uniquified in (index, name) order so two disassemblies of the same
    program always agree.
    """
    used = set()
    mapping: Dict[str, str] = {}
    ordered = sorted(program.labels.items(), key=lambda kv: (kv[1], kv[0]))
    for name, _index in ordered:
        candidate = name
        if not _VALID_LABEL.match(candidate):
            candidate = re.sub(r"[^\w.$]", "_", candidate)
            if not candidate or not re.match(r"^[A-Za-z_]", candidate):
                candidate = "L" + candidate.lstrip(".")
            if not _VALID_LABEL.match(candidate):
                candidate = "L" + re.sub(r"[^\w]", "_", name)
        while candidate in used:
            candidate += "_"
        used.add(candidate)
        mapping[name] = candidate
    return mapping


def _labels_by_index(program: Program,
                     names: Dict[str, str]) -> Dict[int, List[str]]:
    by_index: Dict[int, List[str]] = {}
    for name, index in sorted(program.labels.items(),
                              key=lambda kv: (kv[1], kv[0])):
        by_index.setdefault(index, []).append(names[name])
    return by_index


def _branch_target_label(instr: Instruction, program: Program,
                         names: Dict[str, str],
                         by_index: Dict[int, List[str]],
                         synthesized: Dict[int, str]) -> str:
    """The label text to emit for a branch operand.

    Prefers the instruction's own (renamed) label; a linked branch that
    carries only ``target_addr`` gets a synthesized ``Ltgt_<n>`` label at
    the addressed instruction.
    """
    if instr.target is not None:
        if instr.target not in names:
            raise AssemblerError(
                f"branch at {instr.address:#x} targets unknown label "
                f"{instr.target!r}")
        return names[instr.target]
    if instr.target_addr is None:
        raise AssemblerError(
            f"branch at {instr.address:#x} has no target to disassemble")
    offset = instr.target_addr - program.base_address
    index, misaligned = divmod(offset, INSTR_BYTES)
    if misaligned or not 0 <= index <= len(program.instructions):
        raise AssemblerError(
            f"branch at {instr.address:#x} targets {instr.target_addr:#x}, "
            f"outside the text segment")
    if index not in synthesized:
        existing = by_index.get(index)
        if existing:
            synthesized[index] = existing[0]
        else:
            synthesized[index] = f"Ltgt_{index}"
            by_index.setdefault(index, []).append(synthesized[index])
    return synthesized[index]


def _render_instruction(instr: Instruction, label: str) -> str:
    op = instr.op
    if op is Opcode.B_COND:
        return f"B.{instr.cond.value} {label}"
    if op in (Opcode.B, Opcode.BL):
        return f"{op.value} {label}"
    if op in (Opcode.CBZ, Opcode.CBNZ):
        from repro.isa.registers import reg_name
        return f"{op.value} {reg_name(instr.rn)}, {label}"
    return instr.render()


def _data_line(segment) -> str:
    name = re.sub(r"\s", "_", segment.name) or "seg"
    head = f".data {name} {segment.address:#x}"
    if segment.tag is not None:
        head += f" tag={segment.tag}"
    data = segment.data
    if not any(data):
        return f"{head} zero {len(data)}"
    if len(data) % 8 == 0:
        words = [int.from_bytes(data[i:i + 8], "little")
                 for i in range(0, len(data), 8)]
        return f"{head} words " + " ".join(f"{w:#x}" for w in words)
    return f"{head} bytes " + " ".join(f"{b:#x}" for b in data)


def disassemble(program: Program, notes: bool = True) -> str:
    """Render ``program`` as assembler-accepted source text.

    Args:
        program: the program to dump (linked or not; linking is forced so
            branch targets and addresses are resolved).
        notes: emit each instruction's free-form ``note`` as a trailing
            ``// …`` comment.  Notes do not survive re-assembly, so pass
            ``False`` when the output must be a textual fixed point.
    """
    program.link()
    names = _safe_label_names(program)
    by_index = _labels_by_index(program, names)
    synthesized: Dict[int, str] = {}

    # Resolve branch operand labels first: this may synthesize labels, which
    # must be known before the line-emission walk.
    branch_labels: Dict[int, str] = {}
    for index, instr in enumerate(program.instructions):
        if instr.is_branch and not instr.is_indirect_branch:
            branch_labels[index] = _branch_target_label(
                instr, program, names, by_index, synthesized)

    lines: List[str] = [f".base {program.base_address:#x}"]
    if program.entry_label is not None:
        lines.append(f".entry {names[program.entry_label]}")
    for segment in program.data_segments:
        lines.append(_data_line(segment))
    for index, instr in enumerate(program.instructions):
        for label in by_index.get(index, ()):
            lines.append(f"{label}:")
        text = "    " + _render_instruction(instr, branch_labels.get(index, ""))
        if notes and instr.note:
            text += f"  // {instr.note}"
        lines.append(text)
    # Labels that point one past the last instruction (end-of-text markers).
    for label in by_index.get(len(program.instructions), ()):
        lines.append(f"{label}:")
    return "\n".join(lines) + "\n"


def signature(program: Program) -> Tuple:
    """A canonical structural fingerprint, invariant under disassembly.

    Two programs with equal signatures execute identically: same text
    (opcodes, operands, addresses, resolved branch targets), same entry
    point, same data image and tag assignments.  Label names and
    instruction notes are deliberately excluded — the disassembler may
    rename labels, and notes are annotations.
    """
    program.link()
    instrs = []
    for instr in program.instructions:
        imm, tag_imm = instr.imm, instr.tag_imm
        if instr.op in (Opcode.ADDG, Opcode.SUBG):
            imm, tag_imm = imm or 0, tag_imm or 0
        elif instr.is_memory and instr.op is not Opcode.IRG:
            # `[Xn]` and `[Xn, #0]` are the same addressing mode.
            imm = None if instr.rm is not None else (imm or 0)
        instrs.append((instr.op.value, instr.rd, instr.rn, instr.rm, imm,
                       tag_imm, instr.cond.value if instr.cond else None,
                       instr.target_addr, instr.address))
    segments = tuple(sorted(
        (seg.address, bytes(seg.data), seg.tag)
        for seg in program.data_segments))
    return (program.base_address, program.entry_address,
            tuple(instrs), segments)
