"""A small two-pass assembler for the AArch64-flavoured ISA.

Accepted syntax mirrors the paper's Listing 1::

        LDR X1, [X10]
    mistrained_branch:
        CMP X0, X1          // X < ARRAY1_SIZE
        B.LO spec_v1_path
    spec_v1_path:
        LDR X5, [X2, X0]
        LSL X6, X5, #12
        ADD X7, X3, X6
        LDR X8, [X7]
    safe_path:
        ADD X9, X9, #1
        HALT

Directives:

- ``.base <addr>`` — text segment base address (default ``0x1000``).
- ``.entry <label>`` — entry point (default: first instruction).
- ``.data <name> <addr> [tag=<t>] zero <n>`` — n zero bytes at ``addr``.
- ``.data <name> <addr> [tag=<t>] bytes <b0> <b1> ...`` — literal bytes.
- ``.data <name> <addr> [tag=<t>] words <w0> <w1> ...`` — 64-bit LE words.

Comments start with ``//`` or ``;``.  Immediates are written ``#123``,
``#0x1f``, or ``#-4``.
"""

from __future__ import annotations

import re
import struct
from typing import List, Optional

from repro.errors import AssemblerError
from repro.isa.instructions import Cond, Instruction, Opcode
from repro.isa.program import DataSegment, Program, TEXT_BASE
from repro.isa.registers import reg_index

_LABEL_RE = re.compile(r"^([A-Za-z_][\w.$]*):\s*(.*)$")
_MEM_RE = re.compile(r"^\[\s*([^\],]+)\s*(?:,\s*([^\]]+))?\]$")

_ZERO_OPERAND = {Opcode.RET, Opcode.NOP, Opcode.BTI, Opcode.SB, Opcode.HALT}
_THREE_REG = {Opcode.ADD, Opcode.SUB, Opcode.AND, Opcode.ORR, Opcode.EOR,
              Opcode.LSL, Opcode.LSR, Opcode.ASR, Opcode.MUL, Opcode.UDIV}


def assemble(source: str, base_address: int = TEXT_BASE) -> Program:
    """Assemble ``source`` into a linked :class:`Program`.

    Raises:
        AssemblerError: on any syntax problem or unresolved label, with the
            offending 1-based line number attached.
    """
    program = Program(base_address=base_address)
    instr_lines: List[int] = []  # instruction index -> 1-based source line
    for line_no, raw in enumerate(source.splitlines(), start=1):
        line = _strip_comment(raw).strip()
        if not line:
            continue
        match = _LABEL_RE.match(line)
        if match:
            name, rest = match.groups()
            try:
                program.label(name)
            except AssemblerError as exc:
                raise AssemblerError(str(exc), line_no) from None
            line = rest.strip()
            if not line:
                continue
        if line.startswith("."):
            _directive(program, line, line_no)
            continue
        program.add(_parse_instruction(line, line_no))
        instr_lines.append(line_no)
    for index, instr in enumerate(program.instructions):
        if instr.target is not None and instr.target not in program.labels:
            raise AssemblerError(f"undefined label {instr.target!r}",
                                 instr_lines[index])
    if (program.entry_label is not None
            and program.entry_label not in program.labels):
        raise AssemblerError(
            f"undefined .entry label {program.entry_label!r}")
    try:
        program.link()
    except AssemblerError as exc:
        raise AssemblerError(f"link failed: {exc}",
                             getattr(exc, "line_no", None)) from None
    return program


def _strip_comment(line: str) -> str:
    for marker in ("//", ";"):
        pos = line.find(marker)
        if pos >= 0:
            line = line[:pos]
    return line


def _directive(program: Program, line: str, line_no: int) -> None:
    parts = line.split()
    head = parts[0].lower()
    if head == ".base":
        if len(parts) != 2:
            raise AssemblerError(".base expects one address", line_no)
        if program.instructions:
            raise AssemblerError(".base must precede instructions", line_no)
        program.base_address = _int(parts[1], line_no)
    elif head == ".entry":
        if len(parts) != 2:
            raise AssemblerError(".entry expects one label", line_no)
        program.entry_label = parts[1]
    elif head == ".data":
        _data_directive(program, parts[1:], line_no)
    else:
        raise AssemblerError(f"unknown directive {parts[0]!r}", line_no)


def _data_directive(program: Program, args: List[str], line_no: int) -> None:
    if len(args) < 3:
        raise AssemblerError(".data expects: name addr [tag=t] kind values", line_no)
    name = args[0]
    address = _int(args[1], line_no)
    rest = args[2:]
    tag: Optional[int] = None
    if rest and rest[0].startswith("tag="):
        tag = _int(rest[0][4:], line_no)
        rest = rest[1:]
    if not rest:
        raise AssemblerError(".data missing payload kind", line_no)
    kind, values = rest[0].lower(), rest[1:]
    if kind == "zero":
        if len(values) != 1:
            raise AssemblerError(".data zero expects a byte count", line_no)
        payload = bytes(_int(values[0], line_no))
    elif kind == "bytes":
        payload = bytes(_int(v, line_no) & 0xFF for v in values)
    elif kind == "words":
        payload = b"".join(
            struct.pack("<Q", _int(v, line_no) & (2**64 - 1)) for v in values)
    else:
        raise AssemblerError(f"unknown .data kind {kind!r}", line_no)
    try:
        program.add_segment(DataSegment(name, address, payload, tag))
    except AssemblerError as exc:
        raise AssemblerError(str(exc), line_no) from None


def _parse_instruction(line: str, line_no: int) -> Instruction:
    mnemonic, _, operand_text = line.partition(" ")
    mnemonic = mnemonic.upper()
    operands = _split_operands(operand_text)

    if mnemonic.startswith("B.") and len(mnemonic) > 2:
        cond_name = mnemonic[2:]
        try:
            cond = Cond[cond_name]
        except KeyError:
            raise AssemblerError(f"unknown condition {cond_name!r}", line_no)
        if len(operands) != 1:
            raise AssemblerError("B.cond expects one target label", line_no)
        return Instruction(Opcode.B_COND, cond=cond, target=operands[0])

    try:
        op = Opcode(mnemonic)
    except ValueError:
        raise AssemblerError(f"unknown mnemonic {mnemonic!r}", line_no)

    try:
        return _build(op, operands, line_no)
    except AssemblerError:
        raise
    except Exception as exc:  # operand-count/shape errors
        raise AssemblerError(f"bad operands for {mnemonic}: {exc}", line_no)


def _build(op: Opcode, ops: List[str], line_no: int) -> Instruction:
    if op in _ZERO_OPERAND:
        _expect(ops, 0, op, line_no)
        return Instruction(op)
    if op in (Opcode.B, Opcode.BL):
        _expect(ops, 1, op, line_no)
        return Instruction(op, target=ops[0])
    if op in (Opcode.BR, Opcode.BLR):
        _expect(ops, 1, op, line_no)
        return Instruction(op, rn=reg_index(ops[0]))
    if op in (Opcode.CBZ, Opcode.CBNZ):
        _expect(ops, 2, op, line_no)
        return Instruction(op, rn=reg_index(ops[0]), target=ops[1])
    if op is Opcode.CMP:
        _expect(ops, 2, op, line_no)
        rn = reg_index(ops[0])
        if ops[1].startswith("#"):
            return Instruction(op, rn=rn, imm=_imm(ops[1], line_no))
        return Instruction(op, rn=rn, rm=reg_index(ops[1]))
    if op is Opcode.MOV:
        _expect(ops, 2, op, line_no)
        rd = reg_index(ops[0])
        if ops[1].startswith("#"):
            return Instruction(op, rd=rd, imm=_imm(ops[1], line_no))
        return Instruction(op, rd=rd, rn=reg_index(ops[1]))
    if op in (Opcode.LDR, Opcode.LDRB, Opcode.STR, Opcode.STRB,
              Opcode.STG, Opcode.LDG):
        _expect(ops, 2, op, line_no)
        rd = reg_index(ops[0])
        rn, rm, imm = _mem_operand(ops[1], line_no)
        return Instruction(op, rd=rd, rn=rn, rm=rm, imm=imm)
    if op is Opcode.IRG:
        _expect(ops, 2, op, line_no)
        return Instruction(op, rd=reg_index(ops[0]), rn=reg_index(ops[1]))
    if op in (Opcode.ADDG, Opcode.SUBG):
        _expect(ops, 4, op, line_no)
        return Instruction(op, rd=reg_index(ops[0]), rn=reg_index(ops[1]),
                           imm=_imm(ops[2], line_no),
                           tag_imm=_imm(ops[3], line_no))
    if op in _THREE_REG:
        _expect(ops, 3, op, line_no)
        rd, rn = reg_index(ops[0]), reg_index(ops[1])
        if ops[2].startswith("#"):
            return Instruction(op, rd=rd, rn=rn, imm=_imm(ops[2], line_no))
        return Instruction(op, rd=rd, rn=rn, rm=reg_index(ops[2]))
    raise AssemblerError(f"unhandled opcode {op.value}", line_no)


def _mem_operand(text: str, line_no: int):
    match = _MEM_RE.match(text.strip())
    if not match:
        raise AssemblerError(f"bad memory operand {text!r}", line_no)
    base, offset = match.groups()
    rn = reg_index(base)
    if offset is None:
        return rn, None, 0
    offset = offset.strip()
    if offset.startswith("#"):
        return rn, None, _imm(offset, line_no)
    return rn, reg_index(offset), None


def _split_operands(text: str) -> List[str]:
    """Split on commas, but keep ``[Xn, Xm]`` memory operands intact."""
    operands: List[str] = []
    depth = 0
    current = ""
    for char in text:
        if char == "[":
            depth += 1
        elif char == "]":
            depth -= 1
        if char == "," and depth == 0:
            operands.append(current.strip())
            current = ""
        else:
            current += char
    if current.strip():
        operands.append(current.strip())
    return operands


def _expect(ops: List[str], count: int, op: Opcode, line_no: int) -> None:
    if len(ops) != count:
        raise AssemblerError(
            f"{op.value} expects {count} operand(s), got {len(ops)}", line_no)


def _imm(text: str, line_no: int) -> int:
    return _int(text.lstrip("#"), line_no)


def _int(text: str, line_no: int) -> int:
    try:
        return int(text, 0)
    except ValueError:
        raise AssemblerError(f"bad integer {text!r}", line_no) from None
