"""Program container: instructions, labels, and initial data segments.

A :class:`Program` is the unit the simulator loads: a list of static
instructions laid out from ``base_address``, a label map, and zero or more
:class:`DataSegment` initial-memory images (optionally MTE-tagged).  Label
resolution ("linking") happens once, in :meth:`Program.link`, after which
every branch carries an absolute ``target_addr``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import AssemblerError
from repro.isa.instructions import Instruction, INSTR_BYTES

#: Default base address for the text segment.
TEXT_BASE = 0x1000


@dataclass
class DataSegment:
    """An initial memory image loaded before the program runs.

    Attributes:
        name: symbolic name, usable as a label in assembly (``LDR X0, =name``
            is not supported; workloads materialize addresses via MOV).
        address: untagged start address.
        data: initial bytes.
        tag: MTE allocation tag to apply to every granule of the segment, or
            ``None`` to leave the segment untagged (tag 0).
    """

    name: str
    address: int
    data: bytes = b""
    tag: Optional[int] = None

    @property
    def size(self) -> int:
        return len(self.data)

    @property
    def end(self) -> int:
        return self.address + self.size


@dataclass
class Program:
    """A linked or linkable program.

    Instructions are fixed-width (:data:`INSTR_BYTES`); instruction *i* lives
    at ``base_address + i * INSTR_BYTES``.
    """

    instructions: List[Instruction] = field(default_factory=list)
    labels: Dict[str, int] = field(default_factory=dict)  # label -> instr index
    data_segments: List[DataSegment] = field(default_factory=list)
    base_address: int = TEXT_BASE
    entry_label: Optional[str] = None
    _linked: bool = False

    def __len__(self) -> int:
        return len(self.instructions)

    # -- construction ---------------------------------------------------------

    def add(self, instr: Instruction) -> Instruction:
        """Append ``instr`` and return it."""
        self.instructions.append(instr)
        self._linked = False
        return instr

    def label(self, name: str) -> None:
        """Define ``name`` at the current end of the instruction stream."""
        if name in self.labels:
            raise AssemblerError(f"duplicate label {name!r}")
        self.labels[name] = len(self.instructions)
        self._linked = False

    def add_segment(self, segment: DataSegment) -> DataSegment:
        """Register an initial data segment, checking for overlap."""
        for existing in self.data_segments:
            if segment.address < existing.end and existing.address < segment.end:
                raise AssemblerError(
                    f"data segment {segment.name!r} overlaps {existing.name!r}")
        self.data_segments.append(segment)
        return segment

    # -- linking --------------------------------------------------------------

    def address_of(self, label: str) -> int:
        """Absolute address of ``label`` (text labels only)."""
        if label not in self.labels:
            raise AssemblerError(f"undefined label {label!r}")
        return self.base_address + self.labels[label] * INSTR_BYTES

    def link(self) -> "Program":
        """Assign instruction addresses and resolve branch targets in place."""
        if self._linked:
            return self
        for index, instr in enumerate(self.instructions):
            instr.address = self.base_address + index * INSTR_BYTES
        for instr in self.instructions:
            if instr.target is not None:
                instr.target_addr = self.address_of(instr.target)
        self._linked = True
        return self

    @property
    def entry_address(self) -> int:
        """The address execution starts at."""
        if self.entry_label is not None:
            return self.address_of(self.entry_label)
        return self.base_address

    @property
    def end_address(self) -> int:
        """First address past the text segment."""
        return self.base_address + len(self.instructions) * INSTR_BYTES

    def fetch(self, address: int) -> Optional[Instruction]:
        """The instruction at ``address``, or ``None`` if outside the text."""
        if address < self.base_address or address >= self.end_address:
            return None
        offset = address - self.base_address
        if offset % INSTR_BYTES:
            return None
        return self.instructions[offset // INSTR_BYTES]

    def segment(self, name: str) -> DataSegment:
        """Look up a data segment by name."""
        for seg in self.data_segments:
            if seg.name == name:
                return seg
        raise AssemblerError(f"no data segment named {name!r}")

    def listing(self, start: int = 0, count: Optional[int] = None) -> str:
        """A human-readable disassembly listing (used by the walkthrough)."""
        self.link()
        index_to_labels: Dict[int, List[str]] = {}
        for name, idx in self.labels.items():
            index_to_labels.setdefault(idx, []).append(name)
        lines = []
        stop = len(self.instructions) if count is None else min(
            len(self.instructions), start + count)
        for idx in range(start, stop):
            for name in index_to_labels.get(idx, ()):
                lines.append(f"{name}:")
            instr = self.instructions[idx]
            lines.append(f"  {instr.address:#08x}  {instr.render()}")
        return "\n".join(lines)
