"""A functional (non-pipelined) reference interpreter.

Executes programs with plain sequential semantics — no speculation, no
timing — and is used as the *oracle* for differential testing of the
out-of-order core: whatever renaming, speculation, squashing, forwarding,
and replay the pipeline performs, the architectural results must match
this interpreter exactly.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.config import MTEConfig
from repro.errors import SimulationError, TagCheckFault
from repro.isa.instructions import (
    Cond,
    FLAGS_REG,
    INSTR_BYTES,
    Opcode,
    RENAME_REGS,
)
from repro.isa.program import Program
from repro.isa.registers import LR, SP, XZR
from repro.memory.dram import MainMemory
from repro.mte.tags import key_of, strip_tag, with_key

_WORD = (1 << 64) - 1


class Interpreter:
    """Sequential reference executor.

    Args:
        program: the linked program to run.
        memory: optional pre-built memory (a fresh one is created and the
            program's segments loaded otherwise).
        check_tags: raise :class:`TagCheckFault` on MTE mismatches (the
            committed-path architectural behaviour).
        seed: IRG randomness seed — must match the core's for lockstep
            comparisons involving IRG.
    """

    def __init__(self, program: Program, memory: Optional[MainMemory] = None,
                 check_tags: bool = False, seed: int = 0xA11C):
        self.program = program.link()
        self.memory = memory or MainMemory()
        if memory is None:
            for segment in program.data_segments:
                self.memory.load_image(segment.address, segment.data)
                if segment.tag is not None:
                    self.memory.tag_range(segment.address,
                                          max(segment.size, 1), segment.tag)
        self.check_tags = check_tags
        self.mte = MTEConfig()
        self._rng = random.Random(seed)
        self.regs = [0] * RENAME_REGS
        self.regs[SP] = 0x0F0000
        self.pc = program.entry_address
        self.halted = False
        self.executed = 0

    # -- helpers -----------------------------------------------------------

    def _read(self, reg: int) -> int:
        return 0 if reg == XZR else self.regs[reg]

    def _write(self, reg: int, value: int) -> None:
        if reg != XZR:
            self.regs[reg] = value & _WORD

    def _operand2(self, instr) -> int:
        if instr.rm is not None:
            return self._read(instr.rm)
        return (instr.imm or 0) & _WORD

    def _address(self, instr) -> int:
        base = self._read(instr.rn)
        offset = (self._read(instr.rm) if instr.rm is not None
                  else (instr.imm or 0))
        return (base + offset) & _WORD

    def _tag_check(self, pointer: int, pc: int) -> None:
        if not self.check_tags:
            return
        lock = self.memory.lock_of(pointer)
        key = key_of(pointer, self.mte.tag_bits)
        if key != lock:
            raise TagCheckFault(strip_tag(pointer), key, lock, pc=pc)

    @staticmethod
    def _flags(a: int, b: int) -> int:
        result = (a - b) & _WORD
        n = result >> 63
        z = int(result == 0)
        c = int(a >= b)
        sa, sb, sr = a >> 63, b >> 63, result >> 63
        v = int(sa != sb and sr != sa)
        return (n << 3) | (z << 2) | (c << 1) | v

    @staticmethod
    def _cond(cond: Cond, flags: int) -> bool:
        n, z, c, v = bool(flags & 8), bool(flags & 4), bool(flags & 2), bool(flags & 1)
        return {
            Cond.EQ: z, Cond.NE: not z, Cond.LO: not c, Cond.HS: c,
            Cond.LT: n != v, Cond.GE: n == v, Cond.LE: z or n != v,
            Cond.GT: (not z) and n == v, Cond.MI: n, Cond.PL: not n,
        }[cond]

    # -- execution -----------------------------------------------------------

    def step(self) -> None:
        """Execute one instruction."""
        instr = self.program.fetch(self.pc)
        if instr is None:
            raise SimulationError(f"reference fell off text at {self.pc:#x}")
        self.executed += 1
        next_pc = self.pc + INSTR_BYTES
        op = instr.op
        if op is Opcode.HALT:
            self.halted = True
            return
        if op in (Opcode.NOP, Opcode.BTI, Opcode.SB):
            pass
        elif op is Opcode.MOV:
            value = (self._read(instr.rn) if instr.rn is not None
                     else (instr.imm or 0) & _WORD)
            self._write(instr.rd, value)
        elif op is Opcode.CMP:
            self.regs[FLAGS_REG] = self._flags(self._read(instr.rn),
                                               self._operand2(instr))
        elif op in (Opcode.ADD, Opcode.SUB, Opcode.AND, Opcode.ORR,
                    Opcode.EOR, Opcode.LSL, Opcode.LSR, Opcode.ASR,
                    Opcode.MUL, Opcode.UDIV):
            a, b = self._read(instr.rn), self._operand2(instr)
            if op is Opcode.ADD:
                value = a + b
            elif op is Opcode.SUB:
                value = a - b
            elif op is Opcode.AND:
                value = a & b
            elif op is Opcode.ORR:
                value = a | b
            elif op is Opcode.EOR:
                value = a ^ b
            elif op is Opcode.LSL:
                value = a << (b & 63)
            elif op is Opcode.LSR:
                value = a >> (b & 63)
            elif op is Opcode.ASR:
                signed = a - (1 << 64) if a >> 63 else a
                value = signed >> (b & 63)
            elif op is Opcode.MUL:
                value = a * b
            else:  # UDIV
                value = a // b if b else 0
            self._write(instr.rd, value)
        elif op is Opcode.B:
            next_pc = instr.target_addr
        elif op is Opcode.BL:
            self._write(LR, next_pc)
            next_pc = instr.target_addr
        elif op is Opcode.B_COND:
            if self._cond(instr.cond, self.regs[FLAGS_REG]):
                next_pc = instr.target_addr
        elif op in (Opcode.CBZ, Opcode.CBNZ):
            zero = self._read(instr.rn) == 0
            if zero == (op is Opcode.CBZ):
                next_pc = instr.target_addr
        elif op is Opcode.BR:
            next_pc = strip_tag(self._read(instr.rn))
        elif op is Opcode.BLR:
            target = strip_tag(self._read(instr.rn))
            self._write(LR, next_pc)
            next_pc = target
        elif op is Opcode.RET:
            next_pc = strip_tag(self._read(LR))
        elif op in (Opcode.LDR, Opcode.LDRB):
            address = self._address(instr)
            self._tag_check(address, self.pc)
            width = 1 if op is Opcode.LDRB else 8
            self._write(instr.rd, int.from_bytes(
                self.memory.read(address, width), "little"))
        elif op in (Opcode.STR, Opcode.STRB):
            address = self._address(instr)
            self._tag_check(address, self.pc)
            width = 1 if op is Opcode.STRB else 8
            value = self._read(instr.rd) & ((1 << (8 * width)) - 1)
            self.memory.write(address, value.to_bytes(width, "little"))
        elif op is Opcode.IRG:
            tag = self._rng.randrange(self.mte.num_tags)
            self._write(instr.rd, with_key(self._read(instr.rn), tag,
                                           self.mte.tag_bits))
        elif op in (Opcode.ADDG, Opcode.SUBG):
            a = self._read(instr.rn)
            key = key_of(a, self.mte.tag_bits)
            sign = 1 if op is Opcode.ADDG else -1
            new_key = (key + sign * (instr.tag_imm or 0)) % self.mte.num_tags
            self._write(instr.rd, with_key(
                (a + sign * (instr.imm or 0)) & _WORD, new_key,
                self.mte.tag_bits))
        elif op is Opcode.STG:
            address = self._address(instr)
            tag = key_of(self._read(instr.rd), self.mte.tag_bits)
            self.memory.set_lock(address, tag)
        elif op is Opcode.LDG:
            address = self._address(instr)
            self._write(instr.rd, with_key(address,
                                           self.memory.lock_of(address),
                                           self.mte.tag_bits))
        else:  # pragma: no cover
            raise SimulationError(f"reference cannot execute {op.value}")
        self.pc = next_pc

    def run(self, max_steps: int = 1_000_000) -> None:
        """Run to HALT (or raise on timeout/fault)."""
        while not self.halted:
            if self.executed >= max_steps:
                raise SimulationError(
                    f"reference did not halt within {max_steps} steps")
            self.step()
