"""An ARM-flavoured 64-bit RISC instruction set for the simulator.

The ISA deliberately mirrors the AArch64 subset the paper's PoC listings use
(Listing 1) plus the MTE extension instructions (IRG/ADDG/STG/LDG) and the
BTI landing pads SpecCFI relies on.  Programs can be written either as text
assembly (:func:`assemble`) or through the fluent :class:`ProgramBuilder`.
"""

from repro.isa.registers import (
    FP,
    LR,
    NUM_REGS,
    reg_index,
    reg_name,
    SP,
    XZR,
)
from repro.isa.instructions import (
    Cond,
    Instruction,
    InstrClass,
    Opcode,
)
from repro.isa.program import DataSegment, Program
from repro.isa.assembler import assemble
from repro.isa.builder import ProgramBuilder
from repro.isa.disasm import disassemble, signature
from repro.isa.interpreter import Interpreter

__all__ = [
    "assemble",
    "disassemble",
    "signature",
    "Interpreter",
    "Cond",
    "DataSegment",
    "FP",
    "Instruction",
    "InstrClass",
    "LR",
    "NUM_REGS",
    "Opcode",
    "Program",
    "ProgramBuilder",
    "reg_index",
    "reg_name",
    "SP",
    "XZR",
]
