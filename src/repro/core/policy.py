"""The defense-policy interface the pipeline consults.

Every mitigation the paper evaluates — the unsafe baseline, speculative
barriers, STT, GhostMinion, SpecCFI, SpecASan, and SpecASan+CFI — is a
:class:`DefensePolicy` plugged into the same out-of-order core.  The hooks
correspond to the points where Figure 1's defense classes intervene:

- **delay ACCESS** — :meth:`may_issue_load` (fences) and the tag-check
  withhold path (:meth:`request_flags`, SpecASan);
- **delay USE** — :meth:`may_issue` (STT delays tainted transmitters);
- **delay TRANSMIT** — :meth:`request_flags` redirecting fills into the
  shadow MinionCache (GhostMinion);
- **control flow** — :meth:`fetch_may_follow_indirect` (SpecCFI).

The base class implements the *unsafe baseline*: every hook permits
everything and no MTE checks are requested.

The static analyzer (:mod:`repro.analysis`) models these same intervention
points without running the pipeline — its per-defense verdict table in
:func:`repro.analysis.gadgets.leaks_under` mirrors the hooks above, and the
differential harness (``python -m repro.analysis --differential``) checks
that both stories agree on every Table-1 cell.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.memory.request import MemResponse
    from repro.pipeline.dyninstr import DynInstr
    from repro.pipeline.core import Core


@dataclass(frozen=True)
class RequestFlags:
    """How a load/store probe should traverse the hierarchy.

    Attributes:
        check_tag: perform the MTE tag check along the way.
        block_fill_on_mismatch: on mismatch, install nothing and withhold
            data (SpecASan G3).
        fill_to_minion: capture speculative fills in the MinionCache
            (GhostMinion).
        allow_stale_forward: the LFB may forward a pending entry's stale
            data to this (speculative) load — the MDS vulnerability the
            unsafe baseline exposes.
    """

    check_tag: bool = False
    block_fill_on_mismatch: bool = False
    fill_to_minion: bool = False
    allow_stale_forward: bool = True


class DefensePolicy:
    """Base policy: the unsafe baseline (no mitigation)."""

    #: Display name used by stats and the evaluation harness.
    name = "none"
    #: Whether MTE tag checking is architecturally enabled under this policy.
    mte_enabled = False
    #: Fetch bubble charged per *validated* indirect-branch prediction
    #: (SpecCFI's landing-pad / shadow-stack check sits in the fetch path).
    cfi_validation_bubble = 0

    def __init__(self) -> None:
        self.core: Optional["Core"] = None
        #: Dynamic-instruction sequence numbers this policy delayed at least
        #: once (Figure 8's "restricted speculative instructions").
        self.restricted_seqs: set = set()

    def attach(self, core: "Core") -> None:
        """Bind the policy to its core (called once by the core)."""
        self.core = core

    def restrict(self, dyn: "DynInstr") -> None:
        """Record that ``dyn`` was delayed by this defense this cycle."""
        self.restricted_seqs.add(dyn.seq)

    # -- checkpointing --------------------------------------------------------

    def state_dict(self) -> dict:
        """Serializable policy state; subclasses extend this dict."""
        return {"name": self.name,
                "restricted_seqs": sorted(self.restricted_seqs)}

    def load_state_dict(self, state: dict) -> None:
        """Restore :meth:`state_dict` output into this (attached) policy.

        Mutates ``restricted_seqs`` in place rather than rebinding it, so
        composite members sharing the set stay aliased after a restore.
        """
        if state.get("name") != self.name:
            from repro.errors import CheckpointError
            raise CheckpointError(
                f"policy {state.get('name')!r} cannot restore into "
                f"{self.name!r}", kind="state-mismatch")
        self.restricted_seqs.clear()
        self.restricted_seqs.update(state["restricted_seqs"])

    # -- front end ----------------------------------------------------------

    def fetch_may_follow_indirect(self, dyn: "DynInstr", target: int) -> bool:
        """May fetch continue down the *predicted* target of an indirect
        branch/return?  SpecCFI refuses non-landing-pad targets."""
        return True

    def on_call_fetched(self, dyn: "DynInstr", return_address: int) -> None:
        """A call (BL/BLR) was fetched (SpecCFI maintains its shadow stack).
        ``dyn`` identifies the fetching instruction so speculative pushes can
        be rolled back on squash."""

    def predict_return(self, dyn: "DynInstr",
                       rsb_prediction: "Optional[int]") -> "Optional[int]":
        """The return-target prediction to use.  The default trusts the
        (circular, overflowable) RSB; SpecCFI substitutes its deeper shadow
        stack, immunizing prediction against RSB wrap-around pollution."""
        return rsb_prediction

    # -- issue --------------------------------------------------------------

    def may_issue(self, dyn: "DynInstr") -> bool:
        """May ``dyn`` leave the issue queue this cycle? (STT's gate.)"""
        return True

    def may_issue_load(self, dyn: "DynInstr") -> bool:
        """May this load access the memory subsystem now? (Fence's gate.)"""
        return True

    def may_forward_store(self, store: "DynInstr", load: "DynInstr") -> bool:
        """May store-to-load forwarding occur? SpecASan requires matching
        address keys (§3.4); the baseline always forwards — Fallout."""
        return True

    def must_hold_bypass_data(self, load: "DynInstr") -> bool:
        """Must this load's data be held back until the memory-dependence
        speculation it rode on resolves?  SpecASan holds *tagged* loads that
        bypassed unresolved stores: the access is issued (to verify the tag
        and warm the cache) but its value is not forwarded until the SQ
        disambiguates (§4.1, Spectre-STL)."""
        return False

    # -- memory -------------------------------------------------------------

    def request_flags(self, dyn: "DynInstr") -> RequestFlags:
        """Flags attached to this instruction's memory request."""
        return RequestFlags()

    def on_load_data_ready(self, dyn: "DynInstr", response: "MemResponse") -> bool:
        """Data arrived for a load; return False to withhold delivery."""
        return True

    def on_tag_outcome(self, dyn: "DynInstr", tag_ok: bool) -> None:
        """The tag-check outcome for ``dyn`` reached the core."""

    # -- lifecycle ------------------------------------------------------------

    def on_execute(self, dyn: "DynInstr") -> None:
        """``dyn`` finished executing (result available)."""

    def on_branch_resolved(self, dyn: "DynInstr", mispredicted: bool) -> None:
        """A branch resolved; speculation shadows may have lifted."""

    def on_squash(self, from_seq: int) -> None:
        """Everything with seq >= from_seq was squashed."""

    def on_commit(self, dyn: "DynInstr") -> None:
        """``dyn`` retired."""


class NoDefense(DefensePolicy):
    """Explicit alias of the unsafe baseline for readability at call sites."""

    name = "none"
