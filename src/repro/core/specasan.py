"""SpecASan: Speculative Address Sanitization (§3).

The mechanism, exactly as Figure 4's state machine describes:

1. On dispatch, LQ/SQ entries start with ``tcs = INIT``.
2. When a load/store issues its memory access (or tag probe), the LSQ moves
   ``tcs`` to ``WAIT`` and the hierarchy performs the MTE check at the
   earliest possible point (L1 / LFB / L2 / memory controller).
3. The outcome returns to the :class:`TagCheckStatusHandler` (TSH):

   - match → ``tcs = SAFE``, the ROB's SSA bit is set to *safe*, data flows;
   - mismatch → ``tcs = UNSAFE``, SSA = *unsafe*, **no data is returned and
     nothing is installed in any cache/LFB/MSHR** (G3); the ROB broadcast
     marks dependent memory instructions unsafe after
     ``unsafe_broadcast_latency`` cycles.

4. The unsafe access then simply waits: if an older branch was mispredicted
   it is squashed with no trace; if it turns out to be on the committed path
   the core raises the architectural tag-check fault (§3.4).

Store-to-load forwarding requires the *address keys* of the load and store
to match; mismatches block the forward (§3.4), which is what stops Fallout.

Because unsafe accesses are rare in benign code, SpecASan's only steady-state
cost is the MTE machinery itself (the tag-storage reads folded into fills).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.policy import DefensePolicy, RequestFlags
from repro.mte.tags import key_of
from repro.pipeline.dyninstr import DynInstr, TagCheckStatus

if TYPE_CHECKING:  # pragma: no cover
    from repro.memory.request import MemResponse
    from repro.pipeline.core import Core


class TagCheckStatusHandler:
    """The TSH of §3.3.2: owns every ``tcs`` transition and the ROB signals."""

    def __init__(self) -> None:
        self.core = None
        self.safe_outcomes = 0
        self.unsafe_outcomes = 0
        #: Chronological (cycle, seq, event) log: the Figure-5 walkthrough
        #: and the state-machine tests read this.
        self.trace = []

    def attach(self, core: "Core") -> None:
        self.core = core

    def _record(self, event: str, dyn: DynInstr) -> None:
        self.trace.append((self.core.cycle, dyn.seq, event))

    def on_outcome(self, dyn: DynInstr, tag_ok: bool) -> None:
        """A tag-check outcome arrived from the memory subsystem."""
        if tag_ok:
            dyn.tcs = TagCheckStatus.SAFE
            dyn.ssa = True       # notify ROB: safe speculative access
            self.safe_outcomes += 1
            self._record("tcs=safe SSA=1", dyn)
        else:
            dyn.tcs = TagCheckStatus.UNSAFE
            dyn.ssa = False      # notify ROB: unsafe speculative access
            self.unsafe_outcomes += 1
            self._record("tcs=unsafe SSA=0", dyn)
            # ROB broadcast: dependent LQ/SQ entries become unsafe too.
            self.core.schedule_unsafe_broadcast(dyn)

    def mark_unsafe_forward(self, load: DynInstr) -> None:
        """A key-mismatched store-to-load forward was prevented (§3.4)."""
        load.tcs = TagCheckStatus.UNSAFE
        load.ssa = False
        self.unsafe_outcomes += 1
        self._record("stl-forward blocked, tcs=unsafe", load)
        self.core.schedule_unsafe_broadcast(load)

    def state_dict(self) -> dict:
        return {"safe_outcomes": self.safe_outcomes,
                "unsafe_outcomes": self.unsafe_outcomes,
                "trace": [list(entry) for entry in self.trace]}

    def load_state_dict(self, state: dict) -> None:
        self.safe_outcomes = int(state["safe_outcomes"])
        self.unsafe_outcomes = int(state["unsafe_outcomes"])
        self.trace = [tuple(entry) for entry in state["trace"]]


class SpecASanPolicy(DefensePolicy):
    """The paper's defense: MTE checks extended to the speculative path."""

    name = "specasan"
    mte_enabled = True

    def __init__(self) -> None:
        super().__init__()
        self.tsh = TagCheckStatusHandler()

    def attach(self, core: "Core") -> None:
        super().attach(core)
        self.tsh.attach(core)

    def request_flags(self, dyn: DynInstr) -> RequestFlags:
        # Every access is checked and mismatches propagate nothing upward
        # (G3).  Stale LFB forwards are *lock-gated*, not forbidden
        # (§3.3.3): the hierarchy compares the requesting pointer's key
        # against the stale occupant's stored allocation tags and, with
        # ``block_fill_on_mismatch`` set, withholds the stale bytes on a
        # mismatch.  A pointer carrying the victim line's own tag is the
        # TikTag-style same-key residual and is forwarded — exactly what
        # the static model's LFB verdict encodes.
        return RequestFlags(check_tag=True, block_fill_on_mismatch=True,
                            allow_stale_forward=True)

    def must_hold_bypass_data(self, load: DynInstr) -> bool:
        # Tagged loads that speculated past unresolved stores wait for the
        # SQ to disambiguate before their data is usable (§4.1).  Untagged
        # (key 0) accesses are outside the software-declared protection
        # boundary and proceed as on the baseline.
        return key_of(load.addr, self.core.config.mte.tag_bits) != 0

    def may_forward_store(self, store: DynInstr, load: DynInstr) -> bool:
        bits = self.core.config.mte.tag_bits
        if key_of(store.addr, bits) == key_of(load.addr, bits):
            return True
        self.tsh.mark_unsafe_forward(load)
        return False

    def on_tag_outcome(self, dyn: DynInstr, tag_ok: bool) -> None:
        self.tsh.on_outcome(dyn, tag_ok)

    def on_load_data_ready(self, dyn: DynInstr, response: "MemResponse") -> bool:
        # Data only ever arrives for safe accesses (the hierarchy withholds
        # mismatched responses); deliver it.
        return True

    def state_dict(self) -> dict:
        state = super().state_dict()
        state["tsh"] = self.tsh.state_dict()
        return state

    def load_state_dict(self, state: dict) -> None:
        super().load_state_dict(state)
        self.tsh.load_state_dict(state["tsh"])
