"""SpecASan — the paper's primary contribution.

- :mod:`repro.core.policy` defines the :class:`DefensePolicy` interface the
  out-of-order core consults (all baselines in :mod:`repro.defenses`
  implement it too);
- :mod:`repro.core.specasan` implements SpecASan itself: the Tag-check
  Status Handler (TSH), the per-LSQ-entry ``tcs`` field, the ROB SSA bits,
  the key-match store-forwarding rule, and the selective delay of unsafe
  speculative accesses.
"""

from repro.core.policy import DefensePolicy, NoDefense, RequestFlags
from repro.core.specasan import SpecASanPolicy, TagCheckStatusHandler

__all__ = [
    "DefensePolicy",
    "NoDefense",
    "RequestFlags",
    "SpecASanPolicy",
    "TagCheckStatusHandler",
]
