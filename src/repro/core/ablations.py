"""Ablation variants of SpecASan (the design choices DESIGN.md calls out).

These exist to quantify *why* SpecASan's design decisions matter:

- :class:`FullDelaySpecASanPolicy` — drop the selective-delay insight and
  stall every tagged speculative load until speculation resolves.  Security
  is unchanged; the cost approaches the barrier baseline, demonstrating
  that checking (not delaying) is what keeps SpecASan cheap (§3.2).
- :class:`NoLFBTagSpecASanPolicy` — SpecASan without §3.3.3's LFB tagging
  (run with ``MemoryConfig(lfb_tagged=False)``): stale in-flight data is
  forwarded unchecked again and the MDS rows of Table 1 flip back to
  unmitigated.
- :func:`memory_controller_only_config` — move the tag-check point from
  the earliest level to the memory controller alone (caches keep no lock
  sidecars): cache-resident secrets are no longer checked, so warm-data
  attacks slip through — the reason §3.3.1 propagates the check "to the
  earliest point that tag checking is possible".
"""

from __future__ import annotations

from dataclasses import replace

from repro.config import SystemConfig
from repro.core.policy import RequestFlags
from repro.core.specasan import SpecASanPolicy
from repro.mte.tags import key_of
from repro.pipeline.dyninstr import DynInstr


class FullDelaySpecASanPolicy(SpecASanPolicy):
    """Delay *every* tagged speculative load, mismatched or not."""

    name = "specasan-full-delay"

    def may_issue_load(self, dyn: DynInstr) -> bool:
        if dyn.addr is None:
            return True
        if key_of(dyn.addr, self.core.config.mte.tag_bits) == 0:
            return True  # untagged accesses still proceed
        return not self.core.is_speculative(dyn)


class NoLFBTagSpecASanPolicy(SpecASanPolicy):
    """SpecASan with the LFB tag extension (§3.3.3) removed.

    Pair with ``MemoryConfig(lfb_tagged=False)``; stale forwards are
    allowed on faith again, as on the unprotected baseline.
    """

    name = "specasan-no-lfb-tags"

    def request_flags(self, dyn: DynInstr) -> RequestFlags:
        return RequestFlags(check_tag=True, block_fill_on_mismatch=True,
                            allow_stale_forward=True)


def memory_controller_only_config(config: SystemConfig) -> SystemConfig:
    """A config whose caches keep no allocation-tag sidecars.

    Tag checks then only happen at the memory controller (§3.3.4); any
    access that hits in a cache is never checked.
    """
    return replace(
        config,
        l1d=replace(config.l1d, tagged=False),
        l2=replace(config.l2, tagged=False),
        memory=replace(config.memory, lfb_tagged=False),
    )


def lfb_untagged_config(config: SystemConfig) -> SystemConfig:
    """A config without LFB allocation tags (the §3.3.3 ablation)."""
    return replace(config, memory=replace(config.memory, lfb_tagged=False))


def prefetcher_config(config: SystemConfig, check_tags: bool) -> SystemConfig:
    """Enable the next-line prefetcher (§6 future work), optionally with
    the SpecASan tag-boundary check."""
    return replace(config, memory=replace(
        config.memory, prefetcher="next-line",
        prefetch_check_tags=check_tags))
