"""Synthetic-workload generator.

Turns a :class:`~repro.workloads.profiles.WorkloadProfile` into a runnable
:class:`~repro.isa.program.Program`: a main loop whose body is a seeded
random sequence of work items drawn from the profile's instruction mix,
operating over an MTE-tagged heap laid out at build time (the tagging
allocator plays the role of the Scudo/glibc toolchain support of §5.2).

Work-item kinds:

- ``alu`` / ``mul`` / ``div`` — register arithmetic chains;
- ``load`` — either a strided stream over the working set or a dependent
  pointer-chase step through a random cyclic permutation;
- ``store`` — strided stream writes;
- ``branch`` — a data-dependent conditional over a decision-byte table
  (the profile's ``branch_entropy`` sets how many bytes are coin flips);
- ``call`` — direct or function-pointer-indirect calls to BTI-padded
  helpers (exercising the RSB, BTB, and SpecCFI's landing-pad checks).
"""

from __future__ import annotations

import random
import struct
from dataclasses import dataclass
from typing import List, Optional

from repro.config import MTEConfig
from repro.rng import workload_stream
from repro.isa.builder import ProgramBuilder
from repro.isa.program import DataSegment, Program
from repro.mte.allocator import TaggedHeap
from repro.mte.tags import with_key
from repro.workloads.profiles import WorkloadProfile

#: Where workload heaps live (per-thread heaps are offset from this).
HEAP_BASE = 0x40000
#: Size of the branch-decision table (power of two).
DECISION_BYTES = 4096
KB_ = 1024


@dataclass
class GeneratedWorkload:
    """A generated program plus metadata the harness reports."""

    name: str
    program: Program
    iterations: int
    body_items: int
    seed: int


#: Registers the body rotates through for ALU work and load destinations.
_POOL = ("X4", "X5", "X6", "X7", "X8", "X9")


def _emit_helpers(b: ProgramBuilder, count: int, rng: random.Random) -> List[str]:
    """Small BTI-padded helper functions; returns their labels."""
    labels = []
    for index in range(count):
        label = f"helper{index}"
        b.label(label)
        b.bti(note="indirect-call landing pad")
        for _ in range(rng.randrange(2, 5)):
            op = rng.choice(("add", "eor", "lsr"))
            getattr(b, op)("X0", "X0", imm=rng.randrange(1, 7))
        b.ret()
        labels.append(label)
    return labels


def generate(profile: WorkloadProfile, seed: int = 0,
             target_instructions: int = 20_000,
             heap_base: int = HEAP_BASE,
             shared_base: Optional[int] = None,
             shared_size: int = 0,
             shared_fraction: float = 0.0,
             shared_store_fraction: float = 0.0,
             mte_instrumented: bool = False,
             mte: Optional[MTEConfig] = None) -> GeneratedWorkload:
    """Generate a deterministic program for ``profile``.

    ``shared_*`` parameters are used by the PARSEC generator to direct a
    fraction of memory traffic at a region all threads map, producing real
    coherence traffic on the multicore system.

    ``mte_instrumented`` emits the MTE toolchain's tagging work (IRG/STG
    churn on a scratch allocation, occasional LDG checks) the way an
    MTE-enabled build would — only the SpecASan configurations run these
    binaries, which is where the paper's "baseline ARM MTE" overhead
    component comes from (§5.3).
    """
    rng = workload_stream(profile.name, seed)
    mte = mte or MTEConfig()
    b = ProgramBuilder()

    # ---- heap layout ------------------------------------------------------
    heap = TaggedHeap(heap_base, profile.working_set * 2 + 0x10000, mte)
    stream = heap.malloc(max(profile.working_set // 2, 4096))
    chase_nodes = max((profile.working_set // 2) // 8, 64)
    chase = heap.malloc(chase_nodes * 8)
    churn = heap.malloc(64)  # scratch granules the MTE churn retags
    # A small, L1-resident linked list (the hot-list pattern of real code):
    # its hops are fast loads whose addresses depend on prior loads — the
    # dependency chains taint-tracking defenses delay.
    hot_nodes = 256
    hot_chase = heap.malloc(hot_nodes * 8)
    stream_mask = _floor_pow2(stream.size) - 1
    # Small working sets walk element-wise (L1-resident once warm); large
    # ones walk line-wise, so the stream misses L1 and lives in L2 — the
    # cache behaviour that separates compute-bound from memory-bound SPEC.
    stream_stride = 8 if profile.working_set <= 64 * KB_ else 64

    # Pointer-chase chain: a random cyclic permutation, stored as *tagged*
    # pointers so every hop's key matches the chase array's lock.
    order = list(range(chase_nodes))
    rng.shuffle(order)
    chain = bytearray(chase_nodes * 8)
    for position in range(chase_nodes):
        src = order[position]
        dst = order[(position + 1) % chase_nodes]
        pointer = with_key(chase.address + dst * 8, chase.tag, mte.tag_bits)
        chain[src * 8:src * 8 + 8] = struct.pack("<Q", pointer)

    hot_order = list(range(hot_nodes))
    rng.shuffle(hot_order)
    hot_chain = bytearray(hot_nodes * 8)
    for position in range(hot_nodes):
        src = hot_order[position]
        dst = hot_order[(position + 1) % hot_nodes]
        pointer = with_key(hot_chase.address + dst * 8, hot_chase.tag,
                           mte.tag_bits)
        hot_chain[src * 8:src * 8 + 8] = struct.pack("<Q", pointer)

    # Branch-decision table: `branch_entropy` of the bytes are coin flips,
    # the rest are strongly biased (always below the threshold).
    decisions = bytearray(DECISION_BYTES)
    for index in range(DECISION_BYTES):
        if rng.random() < profile.branch_entropy:
            decisions[index] = rng.randrange(256)
        else:
            decisions[index] = 0

    # ---- code --------------------------------------------------------------
    helpers = _emit_helpers(b, profile.num_functions, rng)

    b.label("main")
    b.li("X10", stream.pointer, note="stream array (tagged)")
    # Three independent pointer-chase chains (cursors start a third of the
    # permutation apart) — the memory-level parallelism real pointer-chasing
    # codes exhibit, and what delay-based defenses serialize away.
    chase_cursors = ("X11", "X25", "X26")
    for which, cursor in enumerate(chase_cursors):
        start = order[(which * chase_nodes) // len(chase_cursors)]
        b.li(cursor, with_key(chase.address + start * 8, chase.tag,
                              mte.tag_bits),
             note=f"pointer-chase cursor {which}")
    b.li("X28", with_key(hot_chase.address + hot_order[0] * 8, hot_chase.tag,
                         mte.tag_bits), note="hot-list cursor")
    b.li("X12", heap_base + profile.working_set * 2, note="decision table")
    decision_base = heap_base + profile.working_set * 2
    b.li("X13", decision_base + DECISION_BYTES, note="function-pointer table")
    functable_base = decision_base + DECISION_BYTES
    b.li("X15", 0, note="stream load index")
    b.li("X20", stream_mask // 2 & ~7, note="stream store index")
    b.li("X16", stream_mask & ~7, note="stream mask")
    b.li("X19", 0, note="decision index")
    b.li("X18", 0x1234, note="store payload")
    # Hot-region mask for data-dependent (a[b[i]]) indices: indirection in
    # real programs is local, and this also keeps wrong-path scatter from
    # thrashing the whole cache.
    hot_mask = (_floor_pow2(min(stream.size, 16 * 1024)) - 1) & ~7
    b.li("X24", hot_mask, note="dependent-load hot mask")
    b.li("X5", 1)
    b.li("X6", 3)
    if shared_base is not None and shared_size:
        b.li("X21", with_key(shared_base, 1, mte.tag_bits),
             note="shared region (tag 1)")
        b.li("X22", (seed * 1024) % max(shared_size, 1) & ~63,
             note="shared index (per-thread stagger)")
        b.li("X23", _floor_pow2(shared_size) - 1 & ~7, note="shared mask")

    body = _plan_body(profile, rng, shared_fraction, shared_store_fraction)
    # Iteration count comes from the *uninstrumented* body so the plain and
    # MTE-instrumented builds execute the same underlying work and their
    # cycle counts are directly comparable (the instrumented binary simply
    # carries the extra tagging instructions, like a real MTE build).
    body_cost = _estimate_cost(body)
    iterations = max(2, target_instructions // max(body_cost, 1))
    inner_trips = 8
    outer_trips = max(1, iterations // inner_trips)
    b.li("X29", outer_trips, note="outer loop counter")

    emitter = _BodyEmitter(b, rng, helpers, stream_stride=stream_stride,
                           churn_pointer=with_key(churn.address, churn.tag,
                                                  mte.tag_bits))
    b.label("outer")
    if mte_instrumented:
        # One allocation's worth of tagging work per outer trip — the
        # cadence of an MTE-instrumented allocator, not per-iteration noise.
        emitter.emit("mte_churn")
        emitter.emit("ldg_check")
    b.li("X14", inner_trips, note="inner loop counter")
    b.label("loop")
    for item in body:
        emitter.emit(item)
    b.sub("X14", "X14", imm=1)
    b.cbnz("X14", "loop")
    b.sub("X29", "X29", imm=1)
    b.cbnz("X29", "outer")
    b.halt()
    b.entry("main")

    program = b.build()

    # ---- data segments -------------------------------------------------------
    # Stream data: random words whose low byte is biased by the profile's
    # branch entropy — loaded-data branches (`lbranch`) read these, so their
    # predictability tracks the profile; the rest of each word scatters the
    # dependent (`dload`) accesses across the working set.
    stream_data = bytearray(stream.size)
    for offset in range(0, stream.size, 8):
        word = rng.getrandbits(56) << 8
        low = (128 + rng.randrange(128) if rng.random() < profile.branch_entropy * 0.5
               else rng.randrange(128))
        stream_data[offset:offset + 8] = struct.pack("<Q", word | low)
    program.add_segment(DataSegment(
        "stream", stream.address, bytes(stream_data), tag=stream.tag))
    program.add_segment(DataSegment(
        "chase", chase.address, bytes(chain), tag=chase.tag))
    program.add_segment(DataSegment(
        "hot_chase", hot_chase.address, bytes(hot_chain), tag=hot_chase.tag))
    program.add_segment(DataSegment(
        "decisions", decision_base, bytes(decisions)))
    table = b"".join(struct.pack("<Q", program.address_of(label))
                     for label in helpers)
    program.add_segment(DataSegment("functable", functable_base, table))
    if shared_base is not None and shared_size:
        # The shared region may be registered by several threads; segments
        # are per-program so no overlap check fires across programs.
        program.add_segment(DataSegment(
            "shared", shared_base, bytes(shared_size), tag=1))
    return GeneratedWorkload(
        name=profile.name, program=program, iterations=iterations,
        body_items=len(body), seed=seed)


def _floor_pow2(value: int) -> int:
    power = 1
    while power * 2 <= value:
        power *= 2
    return power


def _plan_body(profile: WorkloadProfile, rng: random.Random,
               shared_fraction: float = 0.0,
               shared_store_fraction: float = 0.0) -> List[str]:
    """Choose the work-item sequence for one loop body."""
    mix = profile.mix
    kinds, weights = zip(*mix.items())
    body: List[str] = []
    for _ in range(profile.body_items):
        if rng.random() < profile.call_fraction:
            body.append("icall" if rng.random() < profile.indirect_fraction
                        else "call")
            continue
        kind = rng.choices(kinds, weights=weights)[0]
        if kind == "load":
            if rng.random() < profile.pointer_chase:
                kind = "chase"
            elif rng.random() < profile.dependent_load:
                kind = "dload"
            elif rng.random() < shared_fraction:
                kind = "sload"
        elif kind == "store" and rng.random() < shared_store_fraction:
            kind = "sstore"
        elif kind == "branch" and rng.random() < profile.loaded_branch:
            kind = "lbranch"
        body.append(kind)
    # Guarded dependent bursts (`if (slow->field) walk hot list`) are
    # structural, scaled by the profile's indirection level: real pointer
    # codes hit this shape every few dozen instructions.
    for _ in range(round(profile.dependent_load * 8)):
        body.insert(rng.randrange(len(body) + 1), "gather")
    return body


#: Rough instruction cost per work item (used to size the loop count).
_ITEM_COST = {"alu": 1, "mul": 1, "div": 1, "load": 3, "chase": 1,
              "store": 3, "branch": 5, "call": 1, "icall": 2,
              "sload": 3, "sstore": 3, "dload": 2, "lbranch": 5,
              "gather": 6, "mte_churn": 2, "ldg_check": 1}


def _estimate_cost(body: List[str]) -> int:
    return sum(_ITEM_COST[item] for item in body) + 2  # loop overhead


class _BodyEmitter:
    """Emits loop-body work items, tracking dataflow between them.

    ALU work rotates over a register pool for ILP; loads deposit their
    results into the same pool so later arithmetic, branch conditions
    (``lbranch``), and addresses (``dload``) genuinely depend on memory —
    the dependencies STT taints and fences serialize.
    """

    CHASE_CURSORS = ("X11", "X25", "X26")

    def __init__(self, b: ProgramBuilder, rng: random.Random,
                 helpers: List[str], stream_stride: int = 8,
                 churn_pointer: int = 0):
        self.b = b
        self.rng = rng
        self.helpers = helpers
        self.stream_stride = stream_stride
        self.churn_pointer = churn_pointer
        self._next = 0
        self._next_chase = 0
        #: Most recent load destination (branch/dload dependency source).
        self.last_load = None

    def _dest(self) -> str:
        reg = _POOL[self._next % len(_POOL)]
        self._next += 1
        return reg

    def _src(self) -> str:
        return self.rng.choice(_POOL)

    def emit(self, item: str) -> None:
        b, rng = self.b, self.rng
        if item == "alu":
            op = rng.choice(("add", "eor", "orr", "sub"))
            if rng.random() < 0.5:
                getattr(b, op)(self._dest(), self._src(), rm=self._src())
            else:
                getattr(b, op)(self._dest(), self._src(),
                               imm=rng.randrange(1, 255))
        elif item == "mul":
            b.mul(self._dest(), self._src(), self._src())
        elif item == "div":
            b.udiv(self._dest(), self._src(), self._src())
        elif item == "load":
            dest = self._dest()
            b.ldr(dest, "X10", rm="X15", note="stream load")
            b.add("X15", "X15", imm=self.stream_stride, note="stream walk")
            b.and_("X15", "X15", "X16")
            self.last_load = dest
        elif item == "dload":
            index = self._dest()
            dest = self._dest()
            source = self.last_load or "X15"
            b.and_(index, source, "X24", note="loaded-data index (hot region)")
            b.ldr(dest, "X10", rm=index, note="dependent (a[b[i]]) load")
            self.last_load = dest
        elif item == "sload":
            dest = self._dest()
            b.ldr(dest, "X21", rm="X22", note="shared-region load")
            b.add("X22", "X22", imm=64)
            b.and_("X22", "X22", "X23")
            self.last_load = dest
        elif item == "sstore":
            b.str_("X18", "X21", rm="X22", note="shared-region store")
            b.add("X22", "X22", imm=64)
            b.and_("X22", "X22", "X23")
        elif item == "chase":
            if self._next_chase % 2 == 0:
                cursor = "X28"  # hot (L1-resident) list
                b.ldr(cursor, cursor, note="hot-list hop")
            else:
                cursor = self.CHASE_CURSORS[(self._next_chase // 2)
                                            % len(self.CHASE_CURSORS)]
                b.ldr(cursor, cursor, note="pointer-chase hop")
                # The `while (node)` guard every pointer walk carries: never
                # taken (the chain is cyclic), perfectly predicted, but
                # unresolved until the hop's value arrives — younger work is
                # speculative for the full miss latency.
                skip = b.fresh_label("wg")
                b.cbz(cursor, skip, note="loop guard")
                b.label(skip)
            self._next_chase += 1
            self.last_load = cursor
        elif item == "store":
            b.str_(self._src(), "X10", rm="X20", note="stream store")
            b.add("X20", "X20", imm=self.stream_stride)
            b.and_("X20", "X20", "X16")
        elif item == "branch":
            skip = b.fresh_label("wb")
            b.ldrb("X17", "X12", rm="X19", note="decision byte")
            b.add("X19", "X19", imm=1)
            b.and_("X19", "X19", imm=DECISION_BYTES - 1)
            b.cmp("X17", imm=128)
            b.b_cond("HS", skip, note="table-driven branch")
            b.add(self._dest(), self._src(), imm=1)
            b.label(skip)
        elif item == "lbranch":
            skip = b.fresh_label("lb")
            if self.rng.random() < 0.6:
                # Loop-guard flavour: `while (node) ...` — the direction is
                # perfectly predictable (pointers are never "null" here) but
                # the branch cannot *resolve* until the chased value arrives,
                # so everything younger stays speculative for the load's
                # full latency.  This is the window delay-based defenses pay
                # for and SpecASan does not.
                cursor = self.CHASE_CURSORS[self._next_chase
                                            % len(self.CHASE_CURSORS)]
                b.and_("X17", cursor, imm=0xFF)
                b.cmp("X17", imm=0x100)
                b.b_cond("HS", skip, note="loop guard on chased pointer")
            else:
                source = self.last_load or "X11"
                b.and_("X17", source, imm=0xFF)
                b.cmp("X17", imm=128)
                b.b_cond("HS", skip, note="branch on loaded data")
            b.add(self._dest(), self._src(), imm=1)
            b.label(skip)
        elif item == "gather":
            # A guarded dependent burst: `if (slow->field) walk hot list` —
            # the guard stays unresolved for the cold load's latency while
            # the short hot chain executes speculatively underneath it.
            # Baselines overlap the chain with the window; taint-tracking
            # and fences must push it past the guard's resolution.
            cursor = self.CHASE_CURSORS[self._next_chase
                                        % len(self.CHASE_CURSORS)]
            skip = b.fresh_label("ga")
            b.cbz(cursor, skip, note="guard on in-flight pointer")
            b.label(skip)
            for _ in range(4):
                b.ldr("X28", "X28", note="guarded hot-list hop")
            self.last_load = "X28"
        elif item == "mte_churn":
            # What an MTE-instrumented allocator does on malloc/free: pick a
            # fresh random tag for the scratch granule and retag it.
            b.li("X27", self.churn_pointer)
            b.irg("X27", "X27", note="IRG: fresh allocation tag")
            b.stg("X27", "X27", note="STG: retag the scratch granule")
        elif item == "ldg_check":
            b.li("X27", self.churn_pointer)
            b.ldg("X27", "X27", note="LDG: read back the allocation tag")
        elif item == "call":
            b.bl(rng.choice(self.helpers))
        elif item == "icall":
            index = rng.randrange(len(self.helpers))
            b.ldr("X17", "X13", imm=index * 8, note="function pointer")
            b.blr("X17", note="indirect helper call")
        else:  # pragma: no cover
            raise ValueError(f"unknown work item {item!r}")
