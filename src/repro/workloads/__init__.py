"""Synthetic stand-ins for the paper's SPEC CPU2017 and PARSEC workloads."""

from repro.workloads.generator import generate, GeneratedWorkload, HEAP_BASE
from repro.workloads.parsec import (
    build_parsec,
    PARSEC_BY_NAME,
    parsec_names,
    PARSEC_SPECS,
    ParsecSpec,
    SHARED_BASE,
)
from repro.workloads.profiles import WorkloadProfile
from repro.workloads.spec import (
    build_spec,
    SPEC_BY_NAME,
    spec_names,
    SPEC_PROFILES,
)

__all__ = [
    "build_parsec",
    "build_spec",
    "generate",
    "GeneratedWorkload",
    "HEAP_BASE",
    "PARSEC_BY_NAME",
    "parsec_names",
    "PARSEC_SPECS",
    "ParsecSpec",
    "SHARED_BASE",
    "SPEC_BY_NAME",
    "spec_names",
    "SPEC_PROFILES",
    "WorkloadProfile",
]
