"""Workload profiles: the knobs that shape a synthetic benchmark.

The paper's Figures 6-9 report *normalized* execution time and restricted-
instruction fractions, which depend on a workload's speculation and memory
behaviour rather than on what it computes.  A :class:`WorkloadProfile`
captures exactly those axes:

- instruction mix (ALU / multiply / divide / load / store / branch),
- branch behaviour: how many branches are data-dependent coin flips
  (``branch_entropy``) versus strongly biased,
- memory behaviour: working-set size (drives L1/L2 miss rates), the
  fraction of loads that pointer-chase a random permutation (serialized
  misses — the classic mcf pattern) versus stream with a fixed stride,
- call structure: direct calls, indirect calls through a function-pointer
  table (BTI-padded, exercising SpecCFI), and returns.

The per-benchmark instances in :mod:`repro.workloads.spec` and
:mod:`repro.workloads.parsec` are calibrated qualitatively from the
published characterizations of SPEC CPU2017 and PARSEC (memory-bound vs
compute-bound vs branchy).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError


@dataclass(frozen=True)
class WorkloadProfile:
    """Shape of one synthetic benchmark."""

    name: str
    #: Instruction-mix weights (normalized internally; need not sum to 1).
    alu_weight: float = 4.0
    mul_weight: float = 0.5
    div_weight: float = 0.1
    load_weight: float = 3.0
    store_weight: float = 1.0
    branch_weight: float = 1.5
    #: Fraction of conditional branches whose direction is a data-dependent
    #: coin flip (drives the misprediction rate).
    branch_entropy: float = 0.15
    #: Working-set size in bytes (e.g. 16 KiB fits L1; 4 MiB spills L2).
    working_set: int = 64 * 1024
    #: Fraction of loads that follow a pointer chain through a random
    #: permutation of the working set (dependent, cache-hostile).
    pointer_chase: float = 0.1
    #: Fraction of loads whose *address* is computed from previously loaded
    #: data (indexed indirection, `a[b[i]]`) — the dependency STT's taint
    #: tracking delays.
    dependent_load: float = 0.15
    #: Fraction of conditional branches that test *loaded* data rather than
    #: the decision table — these stay unresolved for the load's latency,
    #: opening the long speculation windows fences and STT pay for.
    loaded_branch: float = 0.4
    #: Fraction of work items that are calls to small helper functions.
    call_fraction: float = 0.04
    #: Of those calls, the fraction made through a function-pointer table.
    indirect_fraction: float = 0.25
    #: Number of distinct helper functions (indirect-target set size).
    num_functions: int = 4
    #: Work items per loop iteration (loop body size).
    body_items: int = 24
    #: Fraction of the working set that is MTE-tagged heap (vs untagged).
    tagged_fraction: float = 1.0

    def __post_init__(self) -> None:
        weights = (self.alu_weight, self.mul_weight, self.div_weight,
                   self.load_weight, self.store_weight, self.branch_weight)
        if any(w < 0 for w in weights) or sum(weights) <= 0:
            raise ConfigError(f"{self.name}: invalid instruction mix")
        for name in ("branch_entropy", "pointer_chase", "call_fraction",
                     "indirect_fraction", "tagged_fraction"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ConfigError(f"{self.name}: {name} must be in [0, 1]")
        if self.working_set < 4096:
            raise ConfigError(f"{self.name}: working set too small")

    @property
    def mix(self) -> dict:
        """Normalized instruction-mix distribution."""
        total = (self.alu_weight + self.mul_weight + self.div_weight
                 + self.load_weight + self.store_weight + self.branch_weight)
        return {
            "alu": self.alu_weight / total,
            "mul": self.mul_weight / total,
            "div": self.div_weight / total,
            "load": self.load_weight / total,
            "store": self.store_weight / total,
            "branch": self.branch_weight / total,
        }
