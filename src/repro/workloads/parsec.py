"""PARSEC-like multi-threaded workloads (Figure 7/8's x-axis).

Seven profiles, one per benchmark the paper runs on the 4-core system
(§5.1 excludes 6 of 13).  Each thread runs the same body over a private
heap slice plus a fraction of traffic directed at a shared, coherently-
maintained region; shared *stores* generate real invalidation traffic on
:class:`repro.multicore.MulticoreSystem`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.workloads.generator import generate, GeneratedWorkload, HEAP_BASE
from repro.workloads.profiles import WorkloadProfile

KB = 1024

#: Shared-region placement (all threads map it).
SHARED_BASE = 0xA00000
SHARED_SIZE = 16 * KB
#: Address stride between per-thread private heaps.
THREAD_HEAP_STRIDE = 0x180000


@dataclass(frozen=True)
class ParsecSpec:
    """A PARSEC profile plus its sharing behaviour."""

    profile: WorkloadProfile
    shared_fraction: float
    shared_store_fraction: float

    @property
    def name(self) -> str:
        return self.profile.name


PARSEC_SPECS: List[ParsecSpec] = [
    ParsecSpec(WorkloadProfile(
        "blackscholes", dependent_load=0.05, alu_weight=4.8, mul_weight=2.0, div_weight=0.4,
        load_weight=2.2, store_weight=0.8, branch_weight=0.7,
        branch_entropy=0.03, working_set=64 * KB),
        shared_fraction=0.05, shared_store_fraction=0.01),
    ParsecSpec(WorkloadProfile(
        "canneal", dependent_load=0.30, alu_weight=2.4, load_weight=4.2, store_weight=1.2,
        branch_weight=1.6, branch_entropy=0.12, working_set=512 * KB,
        pointer_chase=0.45),
        shared_fraction=0.20, shared_store_fraction=0.05),
    ParsecSpec(WorkloadProfile(
        "ferret", dependent_load=0.15, alu_weight=3.6, mul_weight=1.2, load_weight=3.0,
        store_weight=1.0, branch_weight=1.5, branch_entropy=0.09,
        working_set=512 * KB, pointer_chase=0.12, call_fraction=0.08,
        indirect_fraction=0.35),
        shared_fraction=0.15, shared_store_fraction=0.03),
    ParsecSpec(WorkloadProfile(
        "fluidanimate", dependent_load=0.10, alu_weight=4.2, mul_weight=1.8, load_weight=2.8,
        store_weight=1.4, branch_weight=1.0, branch_entropy=0.06,
        working_set=256 * KB, pointer_chase=0.08),
        shared_fraction=0.18, shared_store_fraction=0.08),
    ParsecSpec(WorkloadProfile(
        "freqmine", dependent_load=0.20, alu_weight=3.2, load_weight=3.4, store_weight=1.1,
        branch_weight=2.0, branch_entropy=0.13, working_set=512 * KB,
        pointer_chase=0.22, call_fraction=0.05),
        shared_fraction=0.12, shared_store_fraction=0.02),
    ParsecSpec(WorkloadProfile(
        "streamcluster", dependent_load=0.10, alu_weight=3.0, mul_weight=1.4, load_weight=4.0,
        store_weight=0.9, branch_weight=0.8, branch_entropy=0.04,
        working_set=512 * KB),
        shared_fraction=0.30, shared_store_fraction=0.02),
    ParsecSpec(WorkloadProfile(
        "swaptions", dependent_load=0.05, alu_weight=4.6, mul_weight=2.2, div_weight=0.5,
        load_weight=2.2, store_weight=0.8, branch_weight=0.8,
        branch_entropy=0.05, working_set=128 * KB),
        shared_fraction=0.06, shared_store_fraction=0.01),
]

PARSEC_BY_NAME: Dict[str, ParsecSpec] = {
    spec.name: spec for spec in PARSEC_SPECS}


def parsec_names() -> List[str]:
    """Benchmark names in Figure 7's plot order."""
    return [spec.name for spec in PARSEC_SPECS]


def build_parsec(name: str, num_threads: int = 4, seed: int = 0,
                 target_instructions: int = 8_000,
                 ) -> List[GeneratedWorkload]:
    """Generate one program per thread for the named PARSEC workload.

    ``target_instructions`` is per thread.  Threads get disjoint private
    heaps and a common shared region (tag 1); the seed staggers their
    shared-region cursors so invalidations really interleave.
    """
    spec = PARSEC_BY_NAME[name]
    return [
        generate(spec.profile, seed=seed + thread * 101,
                 target_instructions=target_instructions,
                 heap_base=HEAP_BASE + thread * THREAD_HEAP_STRIDE,
                 shared_base=SHARED_BASE, shared_size=SHARED_SIZE,
                 shared_fraction=spec.shared_fraction,
                 shared_store_fraction=spec.shared_store_fraction)
        for thread in range(num_threads)
    ]
