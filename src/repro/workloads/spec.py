"""SPEC CPU2017-like single-threaded workloads (Figure 6/8/9's x-axis).

Fifteen profiles, one per benchmark the paper runs (it excludes 8 of 23 for
toolchain reasons, §5.1).  Calibration is qualitative, from the published
characterizations: mcf/omnetpp/xalancbmk are memory-bound pointer-chasers,
x264/imagick/nab/namd are compute-dense with predictable control flow,
deepsjeng/leela/perlbench are branchy, gcc/xz mix everything.
"""

from __future__ import annotations

from typing import Dict, List

from repro.workloads.generator import generate, GeneratedWorkload
from repro.workloads.profiles import WorkloadProfile

KB = 1024

#: The 15 SPEC CPU2017 benchmarks of Figures 6/8/9, in plot order.
SPEC_PROFILES: List[WorkloadProfile] = [
    WorkloadProfile("500.perlbench_r", dependent_load=0.20, alu_weight=4.0, load_weight=3.0,
                    store_weight=1.2, branch_weight=2.2, branch_entropy=0.12,
                    working_set=128 * KB, pointer_chase=0.10,
                    call_fraction=0.08, indirect_fraction=0.35),
    WorkloadProfile("502.gcc_r", dependent_load=0.25, alu_weight=3.5, load_weight=3.2,
                    store_weight=1.4, branch_weight=2.4, branch_entropy=0.14,
                    working_set=512 * KB, pointer_chase=0.15,
                    call_fraction=0.07, indirect_fraction=0.30),
    WorkloadProfile("505.mcf_r", dependent_load=0.25, alu_weight=2.0, load_weight=4.5,
                    store_weight=0.8, branch_weight=1.6, branch_entropy=0.10,
                    working_set=4096 * KB, pointer_chase=0.50,
                    call_fraction=0.02),
    WorkloadProfile("508.namd_r", dependent_load=0.05, alu_weight=4.5, mul_weight=2.0,
                    div_weight=0.2, load_weight=2.5, store_weight=0.8,
                    branch_weight=0.6, branch_entropy=0.02,
                    working_set=64 * KB, pointer_chase=0.02),
    WorkloadProfile("510.parest_r", dependent_load=0.12, alu_weight=3.8, mul_weight=1.6,
                    load_weight=3.0, store_weight=1.0, branch_weight=1.0,
                    branch_entropy=0.05, working_set=1024 * KB,
                    pointer_chase=0.10),
    WorkloadProfile("511.povray_r", dependent_load=0.10, alu_weight=4.2, mul_weight=1.8,
                    div_weight=0.3, load_weight=2.4, store_weight=0.8,
                    branch_weight=1.4, branch_entropy=0.08,
                    working_set=32 * KB, call_fraction=0.10,
                    indirect_fraction=0.20),
    WorkloadProfile("520.omnetpp_r", dependent_load=0.30, alu_weight=2.5, load_weight=4.0,
                    store_weight=1.2, branch_weight=2.0, branch_entropy=0.12,
                    working_set=2048 * KB, pointer_chase=0.40,
                    call_fraction=0.08, indirect_fraction=0.45),
    WorkloadProfile("523.xalancbmk_r", dependent_load=0.30, alu_weight=3.0, load_weight=3.6,
                    store_weight=1.0, branch_weight=2.2, branch_entropy=0.11,
                    working_set=1024 * KB, pointer_chase=0.25,
                    call_fraction=0.09, indirect_fraction=0.50),
    WorkloadProfile("525.x264_r", dependent_load=0.08, alu_weight=5.0, mul_weight=1.4,
                    load_weight=2.8, store_weight=1.2, branch_weight=0.9,
                    branch_entropy=0.05, working_set=256 * KB),
    WorkloadProfile("526.blender_r", dependent_load=0.10, alu_weight=4.4, mul_weight=1.8,
                    div_weight=0.2, load_weight=2.6, store_weight=1.0,
                    branch_weight=1.2, branch_entropy=0.07,
                    working_set=512 * KB, pointer_chase=0.06,
                    call_fraction=0.05),
    WorkloadProfile("531.deepsjeng_r", dependent_load=0.15, alu_weight=3.6, load_weight=2.8,
                    store_weight=1.0, branch_weight=2.6, branch_entropy=0.20,
                    working_set=128 * KB, pointer_chase=0.08,
                    call_fraction=0.06),
    WorkloadProfile("538.imagick_r", dependent_load=0.03, alu_weight=5.2, mul_weight=2.2,
                    div_weight=0.3, load_weight=2.4, store_weight=1.0,
                    branch_weight=0.6, branch_entropy=0.02,
                    working_set=256 * KB),
    WorkloadProfile("541.leela_r", dependent_load=0.15, alu_weight=3.4, load_weight=2.8,
                    store_weight=0.9, branch_weight=2.4, branch_entropy=0.18,
                    working_set=64 * KB, pointer_chase=0.15,
                    call_fraction=0.07),
    WorkloadProfile("544.nab_r", dependent_load=0.05, alu_weight=4.6, mul_weight=2.0,
                    div_weight=0.4, load_weight=2.4, store_weight=0.9,
                    branch_weight=0.7, branch_entropy=0.04,
                    working_set=128 * KB),
    WorkloadProfile("557.xz_r", dependent_load=0.20, alu_weight=3.6, load_weight=3.2,
                    store_weight=1.3, branch_weight=1.8, branch_entropy=0.15,
                    working_set=1024 * KB, pointer_chase=0.20),
]

SPEC_BY_NAME: Dict[str, WorkloadProfile] = {
    profile.name: profile for profile in SPEC_PROFILES}


def spec_names() -> List[str]:
    """Benchmark names in Figure 6's plot order."""
    return [profile.name for profile in SPEC_PROFILES]


def build_spec(name: str, seed: int = 0,
               target_instructions: int = 20_000) -> GeneratedWorkload:
    """Generate one SPEC-like workload by name."""
    return generate(SPEC_BY_NAME[name], seed=seed,
                    target_instructions=target_instructions)
