"""Execution-unit ports.

A Cortex-A76-like port layout: several single-cycle integer ALUs, one
multiply/divide unit, two load ports, one store-address port, and a branch
port.  Port occupancy is per-cycle; SMoTHERSpectre-style speculative
contention channels (§4.1) arise precisely because a speculative
instruction's issue consumes a port that co-runners would observe.
"""

from __future__ import annotations

from typing import Dict

from repro.isa.instructions import InstrClass


#: Ports available per class, per cycle.
DEFAULT_PORTS: Dict[InstrClass, int] = {
    InstrClass.ALU: 4,
    InstrClass.MUL: 1,
    InstrClass.DIV: 1,
    InstrClass.BRANCH: 2,
    InstrClass.LOAD: 2,
    InstrClass.STORE: 1,
    InstrClass.MTE: 1,
    InstrClass.BARRIER: 1,
    InstrClass.NOP: 8,
    InstrClass.HALT: 1,
}


class ExecPorts:
    """Per-cycle issue-port bookkeeping."""

    def __init__(self, ports: Dict[InstrClass, int] = None):
        self.ports = dict(DEFAULT_PORTS if ports is None else ports)
        self._used: Dict[InstrClass, int] = {}
        #: Cumulative per-class issue counts (contention-channel observable).
        self.issue_counts: Dict[InstrClass, int] = {k: 0 for k in self.ports}
        self.contention_stalls = 0

    def new_cycle(self) -> None:
        """Reset per-cycle occupancy."""
        self._used = {}

    def try_claim(self, klass: InstrClass) -> bool:
        """Claim one port of ``klass`` this cycle; False when contended."""
        used = self._used.get(klass, 0)
        if used >= self.ports.get(klass, 1):
            self.contention_stalls += 1
            return False
        self._used[klass] = used + 1
        self.issue_counts[klass] = self.issue_counts.get(klass, 0) + 1
        return True

    def occupancy(self, klass: InstrClass) -> int:
        """Ports of ``klass`` in use this cycle (the contention observable)."""
        return self._used.get(klass, 0)

    def state_dict(self) -> dict:
        # ``_used`` is per-cycle scratch (reset by ``new_cycle``);
        # checkpoints are taken at cycle boundaries, so it is not state.
        return {"issue_counts": {k.value: v
                                 for k, v in self.issue_counts.items()},
                "contention_stalls": self.contention_stalls}

    def load_state_dict(self, state: dict) -> None:
        self._used = {}
        self.issue_counts = {InstrClass(k): int(v)
                             for k, v in state["issue_counts"].items()}
        self.contention_stalls = int(state["contention_stalls"])
