"""The cycle-level out-of-order core (Table 2 configuration)."""

from repro.pipeline.core import Core, MISPREDICT_REDIRECT_PENALTY
from repro.pipeline.dyninstr import DynInstr, InstrState, TagCheckStatus
from repro.pipeline.exec_units import ExecPorts
from repro.pipeline.lsq import LoadStoreQueues
from repro.pipeline.predictors import (
    BranchHistoryBuffer,
    BranchTargetBuffer,
    MemoryDependencePredictor,
    PatternHistoryTable,
    ReturnStackBuffer,
)
from repro.pipeline.stats import CoreStats

__all__ = [
    "BranchHistoryBuffer",
    "BranchTargetBuffer",
    "Core",
    "CoreStats",
    "DynInstr",
    "ExecPorts",
    "InstrState",
    "LoadStoreQueues",
    "MemoryDependencePredictor",
    "MISPREDICT_REDIRECT_PENALTY",
    "PatternHistoryTable",
    "ReturnStackBuffer",
    "TagCheckStatus",
]
