"""Per-core statistics the evaluation harness consumes."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class CoreStats:
    """Counters collected while a core runs.

    ``restricted_committed`` counts committed instructions that were delayed
    at least once by the active defense — the numerator of Figure 8's
    "percentage of restricted speculative instructions".
    """

    cycles: int = 0
    fetched: int = 0
    committed: int = 0
    squashed: int = 0
    branches: int = 0
    branch_mispredicts: int = 0
    loads_committed: int = 0
    stores_committed: int = 0
    loads_issued: int = 0
    stale_forwards: int = 0
    store_forwards: int = 0
    forward_blocked: int = 0
    ordering_violations: int = 0
    restricted_committed: int = 0
    restricted_events: int = 0
    tag_checks: int = 0
    tag_mismatches: int = 0
    unsafe_delays: int = 0
    tag_faults: int = 0
    cfi_fetch_stalls: int = 0

    @property
    def ipc(self) -> float:
        """Committed instructions per cycle."""
        return self.committed / self.cycles if self.cycles else 0.0

    @property
    def mispredict_rate(self) -> float:
        return self.branch_mispredicts / self.branches if self.branches else 0.0

    @property
    def restricted_fraction(self) -> float:
        """Fraction of committed instructions the defense restricted (Fig. 8)."""
        return (self.restricted_committed / self.committed
                if self.committed else 0.0)
