"""Per-core statistics the evaluation harness consumes.

``CoreStats`` stays a flat dataclass so the hot pipeline loops pay a single
integer add per counter bump; the hierarchical structure, dump format, and
derived formulas live in :mod:`repro.telemetry.registry`, which binds these
attributes as views.  The ratio properties below delegate to the formula
definitions shared with the experiment harness and campaign render paths —
they are defined once, in :data:`repro.telemetry.registry.CORE_FORMULAS`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.telemetry.registry import ratio


@dataclass
class CoreStats:
    """Counters collected while a core runs.

    ``restricted_committed`` counts committed instructions that were delayed
    at least once by the active defense — the numerator of Figure 8's
    "percentage of restricted speculative instructions".
    """

    cycles: int = 0
    fetched: int = 0
    committed: int = 0
    squashed: int = 0
    branches: int = 0
    branch_mispredicts: int = 0
    loads_committed: int = 0
    stores_committed: int = 0
    loads_issued: int = 0
    stale_forwards: int = 0
    store_forwards: int = 0
    forward_blocked: int = 0
    ordering_violations: int = 0
    restricted_committed: int = 0
    restricted_events: int = 0
    tag_checks: int = 0
    tag_mismatches: int = 0
    unsafe_delays: int = 0
    tag_faults: int = 0
    cfi_fetch_stalls: int = 0

    @property
    def ipc(self) -> float:
        """Committed instructions per cycle."""
        return ratio(self.committed, self.cycles)

    @property
    def mispredict_rate(self) -> float:
        return ratio(self.branch_mispredicts, self.branches)

    @property
    def restricted_fraction(self) -> float:
        """Fraction of committed instructions the defense restricted (Fig. 8)."""
        return ratio(self.restricted_committed, self.committed)

    def registry(self, scope: str = "core"):
        """A :class:`~repro.telemetry.registry.StatsRegistry` view of these
        counters plus the standard derived formulas, scoped under ``scope``."""
        from repro.telemetry.registry import core_registry
        return core_registry(self, scope_name=scope)

    def state_dict(self) -> dict:
        from dataclasses import asdict
        return asdict(self)

    def load_state_dict(self, state: dict) -> None:
        for name, value in state.items():
            setattr(self, name, int(value))
