"""Branch-prediction and memory-dependence structures.

These are the components TEAs mistrain (§2.1, §4.2):

- :class:`PatternHistoryTable` — gshare-style conditional direction
  predictor (Spectre-PHT / v1 mistrains this);
- :class:`BranchTargetBuffer` — indirect-target predictor, indexed by PC
  hashed with global history so Spectre-BTB (v2) *and* Spectre-BHB can
  alias-inject targets;
- :class:`ReturnStackBuffer` — circular return-address stack
  (Spectre-RSB / v5 under/overflows it);
- :class:`BranchHistoryBuffer` — the global history register feeding both;
- :class:`MemoryDependencePredictor` — the MDU of §3.4, whose
  no-dependence speculation opens the Spectre-STL (v4) window.
"""

from __future__ import annotations

from typing import List, Optional


class BranchHistoryBuffer:
    """Global branch-history register (the BHB)."""

    def __init__(self, bits: int = 8):
        self.bits = bits
        self._mask = (1 << bits) - 1
        self.history = 0

    def update(self, taken: bool) -> None:
        """Shift one outcome into the history."""
        self.history = ((self.history << 1) | int(taken)) & self._mask

    def snapshot(self) -> int:
        return self.history

    def restore(self, value: int) -> None:
        self.history = value & self._mask

    def corrupt(self, rng) -> None:
        """Fault injection: scramble the global history register."""
        self.history = rng.getrandbits(self.bits)

    def state_dict(self) -> dict:
        return {"history": self.history}

    def load_state_dict(self, state: dict) -> None:
        self.history = int(state["history"]) & self._mask


class PatternHistoryTable:
    """gshare: 2-bit saturating counters indexed by PC xor history."""

    def __init__(self, entries: int, bhb: BranchHistoryBuffer):
        self.entries = entries
        self.bhb = bhb
        self._counters: List[int] = [1] * entries  # weakly not-taken
        self.lookups = 0
        self.correct = 0

    @staticmethod
    def _hash(pc: int, history: int) -> int:
        # gshare with a multiplicative spread of the history: naive
        # ``pc ^ history`` collides constantly for small text segments
        # (identical pre-modulus XOR values), which real predictors avoid
        # by hashing more PC/history bits into the index.
        return (pc >> 2) ^ (history * 0x9E37)

    def _index(self, pc: int) -> int:
        return self._hash(pc, self.bhb.history) % self.entries

    def predict(self, pc: int) -> bool:
        """Predicted direction for the conditional branch at ``pc``."""
        self.lookups += 1
        return self._counters[self._index(pc)] >= 2

    def train(self, pc: int, taken: bool, history: int) -> None:
        """Update the counter the prediction used (same history value)."""
        index = self._hash(pc, history) % self.entries
        counter = self._counters[index]
        if taken:
            self._counters[index] = min(3, counter + 1)
        else:
            self._counters[index] = max(0, counter - 1)

    def corrupt(self, rng, fraction: float = 1.0) -> None:
        """Fault injection: randomize a ``fraction`` of the 2-bit counters.

        Mistrained direction state only costs mispredicts (and widens
        wrong-path windows); architectural results must survive unchanged.
        """
        for index in range(self.entries):
            if fraction >= 1.0 or rng.random() < fraction:
                self._counters[index] = rng.randrange(4)

    def state_dict(self) -> dict:
        return {"counters": list(self._counters), "lookups": self.lookups,
                "correct": self.correct}

    def load_state_dict(self, state: dict) -> None:
        self._counters = [int(c) for c in state["counters"]]
        self.lookups = int(state["lookups"])
        self.correct = int(state["correct"])


class BranchTargetBuffer:
    """Direct-mapped indirect-target predictor, history-hashed (BHB-prone)."""

    def __init__(self, entries: int, bhb: BranchHistoryBuffer):
        self.entries = entries
        self.bhb = bhb
        self._targets: List[Optional[int]] = [None] * entries
        self._tags: List[int] = [0] * entries
        self.lookups = 0
        self.mispredicts = 0

    def _index(self, pc: int) -> int:
        # Folding the history in is what makes cross-branch aliasing — and
        # therefore Spectre-BHB-style injection — possible.
        return ((pc >> 2) ^ (self.bhb.history << 3)) % self.entries

    def predict(self, pc: int) -> Optional[int]:
        """Predicted target for the indirect branch at ``pc``, or None."""
        self.lookups += 1
        index = self._index(pc)
        # Deliberately tag-less within the index: aliased branches share the
        # slot, which is the v2/BHB injection surface.
        return self._targets[index]

    def train(self, pc: int, target: int, history: int) -> None:
        index = ((pc >> 2) ^ (history << 3)) % self.entries
        self._targets[index] = target
        self._tags[index] = pc

    def corrupt(self, rng) -> None:
        """Fault injection: scramble every trained target.

        Predicted targets become garbage; fetch follows them, finds no
        text, and recovers at branch resolution — a misprediction storm,
        never a wrong architectural result.
        """
        for index, target in enumerate(self._targets):
            if target is not None:
                self._targets[index] = rng.randrange(1 << 20) & ~3

    def state_dict(self) -> dict:
        return {"targets": list(self._targets), "tags": list(self._tags),
                "lookups": self.lookups, "mispredicts": self.mispredicts}

    def load_state_dict(self, state: dict) -> None:
        self._targets = [None if t is None else int(t)
                         for t in state["targets"]]
        self._tags = [int(t) for t in state["tags"]]
        self.lookups = int(state["lookups"])
        self.mispredicts = int(state["mispredicts"])


class ReturnStackBuffer:
    """Truly circular return-address predictor stack.

    Like real RSBs, the top-of-stack pointer wraps: a call chain deeper than
    ``entries`` overwrites the oldest entries, and pops past the underflow
    point re-read *stale* slots instead of reporting empty.  That stale
    re-use is exactly the Spectre-RSB (ret2spec) attack surface [44, 52].
    """

    def __init__(self, entries: int):
        self.capacity = entries
        self._slots: List[Optional[int]] = [None] * entries
        self._tos = entries - 1
        self.pushes = 0
        self.pops = 0

    def push(self, return_address: int) -> None:
        self._tos = (self._tos + 1) % self.capacity
        self._slots[self._tos] = return_address
        self.pushes += 1

    def pop(self) -> Optional[int]:
        self.pops += 1
        value = self._slots[self._tos]
        self._tos = (self._tos - 1) % self.capacity
        return value

    def peek(self) -> Optional[int]:
        return self._slots[self._tos]

    def corrupt(self, rng) -> None:
        """Fault injection: scramble every occupied return-address slot."""
        for index, slot in enumerate(self._slots):
            if slot is not None:
                self._slots[index] = rng.randrange(1 << 20) & ~3

    def state_dict(self) -> dict:
        return {"slots": list(self._slots), "tos": self._tos,
                "pushes": self.pushes, "pops": self.pops}

    def load_state_dict(self, state: dict) -> None:
        self._slots = [None if s is None else int(s) for s in state["slots"]]
        self._tos = int(state["tos"])
        self.pushes = int(state["pushes"])
        self.pops = int(state["pops"])


class MemoryDependencePredictor:
    """The Memory Disambiguation Unit's predictor (§3.4).

    Default-aggressive: loads are predicted independent of unresolved older
    stores (this is the Spectre-STL window).  An ordering violation trains
    the entry so the same load PC subsequently waits.
    """

    def __init__(self, entries: int):
        self.entries = entries
        self._wait_bits: List[int] = [0] * entries
        self.violations = 0

    def _index(self, pc: int) -> int:
        return (pc >> 2) % self.entries

    def predicts_dependence(self, pc: int) -> bool:
        """True when the load at ``pc`` should wait for older stores."""
        return self._wait_bits[self._index(pc)] > 0

    def train_violation(self, pc: int) -> None:
        """An ordering violation occurred: make this load conservative."""
        self._wait_bits[self._index(pc)] = 3
        self.violations += 1

    def decay(self, pc: int) -> None:
        """Successful aggressive execution slowly re-enables speculation."""
        index = self._index(pc)
        if self._wait_bits[index] > 0:
            self._wait_bits[index] -= 1

    def corrupt(self, rng) -> None:
        """Fault injection: clear every trained wait bit.

        Re-opens the Spectre-STL window for loads that had gone
        conservative; ordering violations re-detect and re-train, so the
        cost is replays, not wrong results.
        """
        self._wait_bits = [0] * self.entries

    def state_dict(self) -> dict:
        return {"wait_bits": list(self._wait_bits),
                "violations": self.violations}

    def load_state_dict(self, state: dict) -> None:
        self._wait_bits = [int(b) for b in state["wait_bits"]]
        self.violations = int(state["violations"])
