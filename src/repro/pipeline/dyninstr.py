"""Dynamic (in-flight) instructions.

A :class:`DynInstr` wraps one static :class:`~repro.isa.instructions.Instruction`
fetched down the (possibly wrong) predicted path.  It carries everything the
out-of-order machinery needs: renamed source producers, the computed result,
branch-resolution state, the memory access response, SpecASan's tag-check
status (``tcs``) and ROB safe-speculative-access bit (``ssa``), and STT's
taint roots.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Optional

from repro.isa.instructions import Instruction
from repro.memory.request import MemResponse


class TagCheckStatus(enum.Enum):
    """The two-bit ``tcs`` field SpecASan adds to each LSQ entry (§3.3.2).

    ``INIT`` (00) on allocation, ``WAIT`` (11) while the check is in flight,
    ``SAFE`` (01) on a match, ``UNSAFE`` (10) on a mismatch.
    """

    INIT = 0b00
    SAFE = 0b01
    UNSAFE = 0b10
    WAIT = 0b11


class InstrState(enum.Enum):
    """Lifecycle of a dynamic instruction."""

    FETCHED = "fetched"
    DISPATCHED = "dispatched"
    ISSUED = "issued"
    COMPLETED = "completed"
    COMMITTED = "committed"


@dataclass
class DynInstr:
    """One in-flight instruction."""

    seq: int
    static: Instruction
    pc: int
    state: InstrState = InstrState.FETCHED
    squashed: bool = False

    # Renamed sources: arch reg -> producing DynInstr (None = read the ARF).
    producers: Dict[int, Optional["DynInstr"]] = field(default_factory=dict)
    result: Optional[int] = None
    issue_cycle: int = -1
    complete_cycle: int = -1

    # Pipeline timestamps (repro.telemetry): -1 until the stage is reached.
    fetch_cycle: int = -1
    dispatch_cycle: int = -1
    commit_cycle: int = -1
    squash_cycle: int = -1
    #: Cycle the active defense first restricted this instruction, and the
    #: cycle that restriction lifted (load data released / issue finally
    #: allowed) — their difference is the Figure-8 restriction delay.
    restricted_cycle: int = -1
    restriction_lifted_cycle: int = -1

    # Branch state.
    pred_taken: bool = False
    pred_target: int = 0
    bhb_snapshot: int = 0
    resolved: bool = False
    actual_taken: bool = False
    actual_target: int = 0
    mispredicted: bool = False

    # Memory state.
    addr: Optional[int] = None          # tagged effective address
    addr_ready_cycle: int = -1
    mem_issued: bool = False
    response: Optional[MemResponse] = None
    forwarded_from: Optional[int] = None
    bypassed_store_seqs: FrozenSet[int] = frozenset()
    used_stale_data: bool = False
    #: The load's value is transient (loosenet forward / stale LFB data)
    #: and must not commit until the full check verifies or machine-clears.
    verify_pending: bool = False
    store_value: Optional[int] = None

    # SpecASan state (§3.3.2, §3.4).
    tcs: TagCheckStatus = TagCheckStatus.INIT
    ssa: Optional[bool] = None          # ROB safe-speculative-access bit
    unsafe_dependent: bool = False      # marked unsafe by the ROB broadcast
    tag_fault_pending: bool = False

    # STT taint: sequence numbers of the speculative loads this value
    # (transitively) derives from.
    taint_roots: FrozenSet[int] = frozenset()
    #: Whether this instruction was speculative when its result appeared
    #: (STT taints such loads; untaint lags the visibility point by the
    #: broadcast latency).
    speculative_at_complete: bool = False

    # Detector-level (oracle) taint used by the attack harness: does this
    # value derive from the planted secret?  Independent of any defense.
    secret_tainted: bool = False

    # Stats plumbing.
    was_restricted: bool = False

    # -- convenience -----------------------------------------------------------

    @property
    def completed(self) -> bool:
        return self.state in (InstrState.COMPLETED, InstrState.COMMITTED)

    @property
    def is_branch(self) -> bool:
        return self.static.is_branch

    @property
    def is_load(self) -> bool:
        return self.static.is_load

    @property
    def is_store(self) -> bool:
        return self.static.is_store

    def producer_values_ready(self) -> bool:
        """All renamed sources have produced their values."""
        return all(p is None or p.completed for p in self.producers.values())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<DynInstr #{self.seq} {self.static.render()} pc={self.pc:#x} "
                f"{self.state.value}{' SQUASHED' if self.squashed else ''}>")

    # -- checkpointing ----------------------------------------------------------

    def state_dict(self) -> dict:
        """JSON-serializable snapshot of this in-flight instruction.

        Cross-instruction references (``producers``, ``forwarded_from``)
        are stored as sequence numbers; the core's restore pass rewires
        them into object references once every live instruction exists.
        ``static`` is rehydrated from the program text via the pc.
        """
        return {
            "seq": self.seq,
            "pc": self.pc,
            "state": self.state.value,
            "squashed": self.squashed,
            "producers": [[reg, None if p is None else p.seq]
                          for reg, p in self.producers.items()],
            "result": self.result,
            "issue_cycle": self.issue_cycle,
            "complete_cycle": self.complete_cycle,
            "fetch_cycle": self.fetch_cycle,
            "dispatch_cycle": self.dispatch_cycle,
            "commit_cycle": self.commit_cycle,
            "squash_cycle": self.squash_cycle,
            "restricted_cycle": self.restricted_cycle,
            "restriction_lifted_cycle": self.restriction_lifted_cycle,
            "pred_taken": self.pred_taken,
            "pred_target": self.pred_target,
            "bhb_snapshot": self.bhb_snapshot,
            "resolved": self.resolved,
            "actual_taken": self.actual_taken,
            "actual_target": self.actual_target,
            "mispredicted": self.mispredicted,
            "addr": self.addr,
            "addr_ready_cycle": self.addr_ready_cycle,
            "mem_issued": self.mem_issued,
            "response": (None if self.response is None
                         else self.response.state_dict()),
            "forwarded_from": self.forwarded_from,
            "bypassed_store_seqs": sorted(self.bypassed_store_seqs),
            "used_stale_data": self.used_stale_data,
            "verify_pending": self.verify_pending,
            "store_value": self.store_value,
            "tcs": self.tcs.value,
            "ssa": self.ssa,
            "unsafe_dependent": self.unsafe_dependent,
            "tag_fault_pending": self.tag_fault_pending,
            "taint_roots": sorted(self.taint_roots),
            "speculative_at_complete": self.speculative_at_complete,
            "secret_tainted": self.secret_tainted,
            "was_restricted": self.was_restricted,
        }

    @classmethod
    def from_state_dict(cls, state: dict,
                        static: Instruction) -> "DynInstr":
        """Rebuild from :meth:`state_dict`; ``producers`` stays empty until
        the caller rewires seq references into object references."""
        dyn = cls(seq=state["seq"], static=static, pc=state["pc"],
                  state=InstrState(state["state"]),
                  squashed=state["squashed"])
        dyn.result = state["result"]
        dyn.issue_cycle = state["issue_cycle"]
        dyn.complete_cycle = state["complete_cycle"]
        dyn.fetch_cycle = state["fetch_cycle"]
        dyn.dispatch_cycle = state["dispatch_cycle"]
        dyn.commit_cycle = state["commit_cycle"]
        dyn.squash_cycle = state["squash_cycle"]
        dyn.restricted_cycle = state["restricted_cycle"]
        dyn.restriction_lifted_cycle = state["restriction_lifted_cycle"]
        dyn.pred_taken = state["pred_taken"]
        dyn.pred_target = state["pred_target"]
        dyn.bhb_snapshot = state["bhb_snapshot"]
        dyn.resolved = state["resolved"]
        dyn.actual_taken = state["actual_taken"]
        dyn.actual_target = state["actual_target"]
        dyn.mispredicted = state["mispredicted"]
        dyn.addr = state["addr"]
        dyn.addr_ready_cycle = state["addr_ready_cycle"]
        dyn.mem_issued = state["mem_issued"]
        if state["response"] is not None:
            dyn.response = MemResponse.from_state_dict(state["response"])
        dyn.forwarded_from = state["forwarded_from"]
        dyn.bypassed_store_seqs = frozenset(state["bypassed_store_seqs"])
        dyn.used_stale_data = state["used_stale_data"]
        dyn.verify_pending = state["verify_pending"]
        dyn.store_value = state["store_value"]
        dyn.tcs = TagCheckStatus(state["tcs"])
        dyn.ssa = state["ssa"]
        dyn.unsafe_dependent = state["unsafe_dependent"]
        dyn.tag_fault_pending = state["tag_fault_pending"]
        dyn.taint_roots = frozenset(state["taint_roots"])
        dyn.speculative_at_complete = state["speculative_at_complete"]
        dyn.secret_tainted = state["secret_tainted"]
        dyn.was_restricted = state["was_restricted"]
        return dyn
