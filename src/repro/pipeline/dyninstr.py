"""Dynamic (in-flight) instructions.

A :class:`DynInstr` wraps one static :class:`~repro.isa.instructions.Instruction`
fetched down the (possibly wrong) predicted path.  It carries everything the
out-of-order machinery needs: renamed source producers, the computed result,
branch-resolution state, the memory access response, SpecASan's tag-check
status (``tcs``) and ROB safe-speculative-access bit (``ssa``), and STT's
taint roots.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Optional

from repro.isa.instructions import Instruction
from repro.memory.request import MemResponse


class TagCheckStatus(enum.Enum):
    """The two-bit ``tcs`` field SpecASan adds to each LSQ entry (§3.3.2).

    ``INIT`` (00) on allocation, ``WAIT`` (11) while the check is in flight,
    ``SAFE`` (01) on a match, ``UNSAFE`` (10) on a mismatch.
    """

    INIT = 0b00
    SAFE = 0b01
    UNSAFE = 0b10
    WAIT = 0b11


class InstrState(enum.Enum):
    """Lifecycle of a dynamic instruction."""

    FETCHED = "fetched"
    DISPATCHED = "dispatched"
    ISSUED = "issued"
    COMPLETED = "completed"
    COMMITTED = "committed"


@dataclass
class DynInstr:
    """One in-flight instruction."""

    seq: int
    static: Instruction
    pc: int
    state: InstrState = InstrState.FETCHED
    squashed: bool = False

    # Renamed sources: arch reg -> producing DynInstr (None = read the ARF).
    producers: Dict[int, Optional["DynInstr"]] = field(default_factory=dict)
    result: Optional[int] = None
    issue_cycle: int = -1
    complete_cycle: int = -1

    # Pipeline timestamps (repro.telemetry): -1 until the stage is reached.
    fetch_cycle: int = -1
    dispatch_cycle: int = -1
    commit_cycle: int = -1
    squash_cycle: int = -1
    #: Cycle the active defense first restricted this instruction, and the
    #: cycle that restriction lifted (load data released / issue finally
    #: allowed) — their difference is the Figure-8 restriction delay.
    restricted_cycle: int = -1
    restriction_lifted_cycle: int = -1

    # Branch state.
    pred_taken: bool = False
    pred_target: int = 0
    bhb_snapshot: int = 0
    resolved: bool = False
    actual_taken: bool = False
    actual_target: int = 0
    mispredicted: bool = False

    # Memory state.
    addr: Optional[int] = None          # tagged effective address
    addr_ready_cycle: int = -1
    mem_issued: bool = False
    response: Optional[MemResponse] = None
    forwarded_from: Optional[int] = None
    bypassed_store_seqs: FrozenSet[int] = frozenset()
    used_stale_data: bool = False
    #: The load's value is transient (loosenet forward / stale LFB data)
    #: and must not commit until the full check verifies or machine-clears.
    verify_pending: bool = False
    store_value: Optional[int] = None

    # SpecASan state (§3.3.2, §3.4).
    tcs: TagCheckStatus = TagCheckStatus.INIT
    ssa: Optional[bool] = None          # ROB safe-speculative-access bit
    unsafe_dependent: bool = False      # marked unsafe by the ROB broadcast
    tag_fault_pending: bool = False

    # STT taint: sequence numbers of the speculative loads this value
    # (transitively) derives from.
    taint_roots: FrozenSet[int] = frozenset()
    #: Whether this instruction was speculative when its result appeared
    #: (STT taints such loads; untaint lags the visibility point by the
    #: broadcast latency).
    speculative_at_complete: bool = False

    # Detector-level (oracle) taint used by the attack harness: does this
    # value derive from the planted secret?  Independent of any defense.
    secret_tainted: bool = False

    # Stats plumbing.
    was_restricted: bool = False

    # -- convenience -----------------------------------------------------------

    @property
    def completed(self) -> bool:
        return self.state in (InstrState.COMPLETED, InstrState.COMMITTED)

    @property
    def is_branch(self) -> bool:
        return self.static.is_branch

    @property
    def is_load(self) -> bool:
        return self.static.is_load

    @property
    def is_store(self) -> bool:
        return self.static.is_store

    def producer_values_ready(self) -> bool:
        """All renamed sources have produced their values."""
        return all(p is None or p.completed for p in self.producers.values())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<DynInstr #{self.seq} {self.static.render()} pc={self.pc:#x} "
                f"{self.state.value}{' SQUASHED' if self.squashed else ''}>")
