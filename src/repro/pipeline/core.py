"""The cycle-level out-of-order core.

One :class:`Core` models an 8-wide Cortex-A76-like machine (Table 2):

- a branch-predicting front end (PHT/BTB/RSB over a global BHB) that fetches
  down the *predicted* path, so wrong-path instructions genuinely execute
  and perturb the memory hierarchy — the raw material of every TEA;
- rename/dispatch into a 40-entry ROB and 32-entry issue queue;
- issue with per-class execution ports (the contention observable);
- a split LSQ with store-to-load forwarding and memory-dependence
  speculation (:mod:`repro.pipeline.lsq`);
- in-order commit with squash recovery, where stores become architectural
  and MTE tag faults are raised (§3.4: a tag-check fault is raised only once
  the unsafe access is bound to commit).

The active :class:`~repro.core.policy.DefensePolicy` is consulted at each of
the intervention points described in Figure 1.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Tuple

from repro.config import SystemConfig
from repro.errors import DeadlockError, SimulationError, TagCheckFault
from repro.core.policy import DefensePolicy, NoDefense
from repro.isa.instructions import (
    Cond,
    FLAGS_REG,
    Instruction,
    InstrClass,
    INSTR_BYTES,
    Opcode,
    RENAME_REGS,
)
from repro.isa.program import Program
from repro.isa.registers import LR, SP, XZR
from repro.memory.hierarchy import MemoryHierarchy
from repro.mte.tags import key_of, strip_tag, with_key
from repro.pipeline.dyninstr import DynInstr, InstrState, TagCheckStatus
from repro.pipeline.exec_units import ExecPorts
from repro.pipeline.lsq import LoadStoreQueues
from repro.pipeline.predictors import (
    BranchHistoryBuffer,
    BranchTargetBuffer,
    MemoryDependencePredictor,
    PatternHistoryTable,
    ReturnStackBuffer,
)
from repro.pipeline.stats import CoreStats

_WORD_MASK = (1 << 64) - 1
#: Fallback redirect penalty (configs override via ``mispredict_penalty``).
MISPREDICT_REDIRECT_PENALTY = 6


def _to_signed(value: int) -> int:
    return value - (1 << 64) if value >> 63 else value


class Core:
    """One out-of-order core attached to a shared memory hierarchy."""

    def __init__(self, config: SystemConfig, hierarchy: MemoryHierarchy,
                 program: Program, policy: Optional[DefensePolicy] = None,
                 core_id: int = 0):
        self.config = config
        self.hierarchy = hierarchy
        self.program = program.link()
        self.policy = policy or NoDefense()
        self.policy.attach(self)
        self.core_id = core_id
        self.stats = CoreStats()
        self._rng = random.Random(config.mte.seed + core_id)

        # Architectural state.
        self.arf: List[int] = [0] * RENAME_REGS
        self.arf[SP] = 0x0F0000 + core_id * 0x10000  # per-core stack region

        # Pipeline structures.
        self.cycle = 0
        self.seq = 0
        self.rob: List[DynInstr] = []
        self.iq: List[DynInstr] = []
        self.fetch_queue: List[DynInstr] = []
        self.rename: Dict[int, DynInstr] = {}
        self.lsq = LoadStoreQueues(self)
        self.ports = ExecPorts()
        self._completions: Dict[int, List[DynInstr]] = {}
        self._unresolved_branches: Dict[int, DynInstr] = {}
        self._pending_sb: List[DynInstr] = []
        self._unsafe_broadcasts: List[Tuple[int, DynInstr]] = []

        # Front-end state.
        self.fetch_pc = self.program.entry_address
        self.fetch_resume_cycle = 0
        self.fetch_blocked_on: Optional[DynInstr] = None
        self._fetch_stopped = False

        # Predictors.
        self.bhb = BranchHistoryBuffer(config.core.bhb_bits)
        self.pht = PatternHistoryTable(config.core.pht_entries, self.bhb)
        self.btb = BranchTargetBuffer(config.core.btb_entries, self.bhb)
        self.rsb = ReturnStackBuffer(config.core.rsb_entries)
        self.mdp = MemoryDependencePredictor(config.core.mdp_entries)

        # Run state.
        self.halted = False
        self.fault: Optional[TagCheckFault] = None
        self._last_commit_cycle = 0
        self.last_commit_pc: Optional[int] = None

        # Resilience hooks (opt-in; attached by repro.resilience objects).
        #: Cycle-level invariant checker consulted periodically by run().
        self.invariant_checker = None
        #: Livelock watchdog notified at each retire.
        self.watchdog = None
        #: Microarchitectural fault injector driven once per cycle by run().
        self.fault_injector = None
        #: Campaign liveness probe pulsed every ``interval`` cycles by run()
        #: (see :class:`repro.campaign.heartbeat.Heartbeat`).  Beats track
        #: *simulated* progress, so a wedged simulation loop stops beating
        #: and the campaign straggler detector can reap the worker.
        self.heartbeat = None
        #: Periodic checkpoint hook: any object with an ``interval`` (cycles)
        #: and a ``save(core)`` method, called every ``interval`` simulated
        #: cycles by run() (see :class:`repro.checkpoint.manager.CheckpointHook`).
        self.checkpoint_hook = None

        # Telemetry hooks (opt-in; see repro.telemetry).  Both default to
        # None and every call site is guarded on that, so an untraced run
        # pays one attribute test per event site.
        #: Pipeline event trace sink (:class:`repro.telemetry.trace.TraceSink`).
        self.trace = None
        #: Occupancy profiler sampled from tick()
        #: (:class:`repro.telemetry.occupancy.OccupancyProfiler`).
        self.occupancy = None

        # Attack-oracle state (§4.3): secret address ranges and the log of
        # secret-dependent speculative activity the detector inspects.
        self.secret_ranges: List[Tuple[int, int]] = []
        self.leak_log: List[Dict] = []

    # ==================================================================
    # public driving API
    # ==================================================================

    def tick(self) -> None:
        """Advance the core one cycle."""
        self.cycle += 1
        self.stats.cycles = self.cycle
        occupancy = self.occupancy
        if occupancy is not None and self.cycle % occupancy.interval == 0:
            occupancy.sample(self)
        self.ports.new_cycle()
        self._commit()
        self._writeback()
        self._deliver_unsafe_broadcasts()
        self.lsq.tick(self.cycle)
        self._issue()
        self._dispatch()
        self._fetch()

    def run(self, max_cycles: Optional[int] = None,
            until_cycle: Optional[int] = None) -> None:
        """Run until HALT commits, a tag fault halts the core, or timeout.

        ``max_cycles`` defaults to the configured cycle budget
        (:attr:`~repro.config.CoreConfig.max_cycles`), so campaigns can set
        per-workload budgets through the config instead of threading an
        argument through every call site.

        ``until_cycle`` pauses the run once ``cycle`` reaches it *without*
        raising: the core is left mid-program in a consistent inter-cycle
        state and a later ``run()`` call continues where it stopped.  This
        is the checkpoint/restore seam — callers checkpoint at the pause,
        and a restored core resumes through the same loop.

        When resilience hooks are attached, each cycle additionally drives
        the fault injector, and the invariant checker runs at its configured
        interval; the livelock watchdog is fed from the commit stage.
        """
        if max_cycles is None:
            max_cycles = self.config.core.max_cycles
        threshold = self.config.core.deadlock_threshold
        while not self.halted and self.cycle < max_cycles:
            if until_cycle is not None and self.cycle >= until_cycle:
                return  # paused, resumable
            if self.fault_injector is not None:
                self.fault_injector.tick(self)
            self.tick()
            checker = self.invariant_checker
            if checker is not None and self.cycle % checker.interval == 0:
                checker.check(self)
            heartbeat = self.heartbeat
            if heartbeat is not None and self.cycle % heartbeat.interval == 0:
                heartbeat.beat(self.cycle)
            hook = self.checkpoint_hook
            if hook is not None and self.cycle % hook.interval == 0:
                hook.save(self)
            if self.cycle - self._last_commit_cycle > threshold:
                from repro.resilience.snapshot import core_snapshot, summarize
                snapshot = core_snapshot(self, restorable=True)
                raise DeadlockError(self.cycle - self._last_commit_cycle,
                                    summarize(snapshot), snapshot=snapshot)
        if not self.halted and self.cycle >= max_cycles:
            raise SimulationError(
                f"program did not halt within {max_cycles} cycles")

    # ==================================================================
    # values and speculation queries
    # ==================================================================

    def value_of(self, dyn: DynInstr, reg: int) -> int:
        """Operand value for ``dyn`` reading architectural register ``reg``."""
        if reg == XZR:
            return 0
        producer = dyn.producers.get(reg)
        if producer is None:
            return self.arf[reg]
        if producer.result is None:
            raise SimulationError(
                f"#{dyn.seq} read {reg} from incomplete producer #{producer.seq}")
        return producer.result

    def read_store_value(self, store: DynInstr) -> Optional[int]:
        """The data a store will write, or ``None`` if not yet produced."""
        reg = store.static.rd
        if reg is None or reg == XZR:
            return 0
        producer = store.producers.get(reg)
        if producer is None:
            return self.arf[reg]
        return producer.result if producer.completed else None

    def is_speculative(self, dyn: DynInstr) -> bool:
        """True while any older branch is unresolved (the speculation window)."""
        for seq in self._unresolved_branches:
            if seq < dyn.seq:
                return True
        return False

    def in_flight(self, seq: int) -> Optional[DynInstr]:
        """The ROB entry with ``seq``, if it is still in flight."""
        for dyn in self.rob:
            if dyn.seq == seq:
                return dyn
        return None

    def taint_root_still_speculative(self, root_seq: int) -> bool:
        """STT untainting rule: a root load stops being tainted once it is
        no longer covered by an unresolved branch (its visibility point)."""
        root = self.in_flight(root_seq)
        if root is None:
            return False
        return self.is_speculative(root) or bool(root.bypassed_store_seqs
                                                 and self._any_bypassed_unresolved(root))

    def _any_bypassed_unresolved(self, load: DynInstr) -> bool:
        for store in self.lsq.sq:
            if store.seq in load.bypassed_store_seqs and store.addr is None:
                return True
        return False

    # ==================================================================
    # defense restriction accounting (Fig. 8 + telemetry)
    # ==================================================================

    def mark_restricted(self, dyn: DynInstr) -> None:
        """Route every defense delay through one place: the policy's
        restricted set, the Figure-8 flag, the restriction timestamp, and
        (when tracing) the ``restrict`` event."""
        self.policy.restrict(dyn)
        if not dyn.was_restricted:
            dyn.was_restricted = True
            dyn.restricted_cycle = self.cycle
            self.stats.restricted_events += 1
            if self.trace is not None:
                self.trace.on_defense_event(dyn, self.cycle, "restrict",
                                            policy=self.policy.name)

    def _note_restriction_lift(self, dyn: DynInstr) -> None:
        """A restricted instruction finally proceeded: record the delay."""
        if dyn.restriction_lifted_cycle >= 0:
            return
        dyn.restriction_lifted_cycle = self.cycle
        delay = self.cycle - dyn.restricted_cycle
        if self.occupancy is not None:
            self.occupancy.note_restriction_delay(delay)
        if self.trace is not None:
            self.trace.on_defense_event(dyn, self.cycle, "lift", delay=delay)

    # ==================================================================
    # fetch
    # ==================================================================

    def _fetch(self) -> None:
        if (self._fetch_stopped or self.fetch_blocked_on is not None
                or self.cycle < self.fetch_resume_cycle):
            return
        budget = self.config.core.fetch_width
        capacity = 2 * self.config.core.fetch_width
        while budget > 0 and len(self.fetch_queue) < capacity:
            static = self.program.fetch(self.fetch_pc)
            if static is None:
                return  # ran past the text segment; wait for a redirect
            dyn = DynInstr(seq=self.seq, static=static, pc=self.fetch_pc,
                           fetch_cycle=self.cycle)
            self.seq += 1
            self.stats.fetched += 1
            if self.trace is not None:
                self.trace.on_fetch(dyn, self.cycle)
            redirected = self._predict_and_advance(dyn)
            self.fetch_queue.append(dyn)
            budget -= 1
            if self._fetch_stopped or self.fetch_blocked_on is not None:
                return
            if redirected:
                return  # taken-branch fetch bubble: stop this cycle

    def _predict_and_advance(self, dyn: DynInstr) -> bool:
        """Set the next fetch PC; returns True when fetch redirected."""
        static = dyn.static
        op = static.op
        next_pc = dyn.pc + INSTR_BYTES
        if op is Opcode.HALT:
            self._fetch_stopped = True
            self.fetch_pc = next_pc
            return False
        if not static.is_branch:
            self.fetch_pc = next_pc
            return False

        dyn.bhb_snapshot = self.bhb.snapshot()
        if op is Opcode.B:
            dyn.resolved = True
            dyn.actual_taken = True
            dyn.actual_target = static.target_addr
            self.fetch_pc = static.target_addr
            return True
        if op is Opcode.BL:
            dyn.resolved = True
            dyn.actual_taken = True
            dyn.actual_target = static.target_addr
            self.rsb.push(dyn.pc + INSTR_BYTES)
            self.policy.on_call_fetched(dyn, dyn.pc + INSTR_BYTES)
            self.fetch_pc = static.target_addr
            return True
        if op in (Opcode.B_COND, Opcode.CBZ, Opcode.CBNZ):
            taken = self.pht.predict(dyn.pc)
            dyn.pred_taken = taken
            dyn.pred_target = static.target_addr
            self.bhb.update(taken)
            self._unresolved_branches[dyn.seq] = dyn
            self.fetch_pc = static.target_addr if taken else next_pc
            return taken
        # Indirect branches and returns.
        if op in (Opcode.BR, Opcode.BLR):
            predicted = self.btb.predict(dyn.pc)
            if op is Opcode.BLR:
                self.rsb.push(dyn.pc + INSTR_BYTES)
                self.policy.on_call_fetched(dyn, dyn.pc + INSTR_BYTES)
        else:  # RET
            predicted = self.policy.predict_return(dyn, self.rsb.pop())
        self._unresolved_branches[dyn.seq] = dyn
        if predicted is None:
            self.fetch_blocked_on = dyn  # no prediction: stall until resolve
            return False
        if not self.policy.fetch_may_follow_indirect(dyn, predicted):
            # SpecCFI: the predicted target is not a valid landing pad —
            # speculation down it is refused; fetch stalls until resolution.
            self.mark_restricted(dyn)
            self.stats.cfi_fetch_stalls += 1
            self.fetch_blocked_on = dyn
            return False
        dyn.pred_taken = True
        dyn.pred_target = predicted
        self.fetch_pc = predicted
        bubble = self.policy.cfi_validation_bubble
        if bubble:
            # SpecCFI's landing-pad / shadow-stack validation sits in the
            # fetch path: one bubble per validated indirect prediction.
            self.fetch_resume_cycle = max(self.fetch_resume_cycle,
                                          self.cycle + 1 + bubble)
        return True

    def target_is_landing_pad(self, target: int) -> bool:
        """Whether ``target`` decodes to a BTI instruction (SpecCFI check)."""
        static = self.program.fetch(target)
        return static is not None and static.op is Opcode.BTI

    # ==================================================================
    # dispatch (rename + allocate)
    # ==================================================================

    def _needs_issue(self, static: Instruction) -> bool:
        if static.op in (Opcode.B, Opcode.NOP, Opcode.BTI, Opcode.SB,
                         Opcode.HALT):
            return False
        return True

    def _dispatch(self) -> None:
        budget = self.config.core.issue_width
        while budget > 0 and self.fetch_queue:
            dyn = self.fetch_queue[0]
            if len(self.rob) >= self.config.core.rob_entries:
                return
            needs_issue = self._needs_issue(dyn.static)
            if needs_issue and len(self.iq) >= self.config.core.iq_entries:
                return
            if not self.lsq.can_dispatch(dyn):
                return
            self.fetch_queue.pop(0)
            dyn.dispatch_cycle = self.cycle
            self._rename(dyn)
            self.rob.append(dyn)
            self.lsq.dispatch(dyn)
            if dyn.static.op is Opcode.SB:
                self._pending_sb.append(dyn)
            if needs_issue:
                dyn.state = InstrState.DISPATCHED
                self.iq.append(dyn)
            else:
                dyn.state = InstrState.COMPLETED
                dyn.complete_cycle = self.cycle
                if dyn.static.op is Opcode.BL:
                    dyn.result = dyn.pc + INSTR_BYTES
            budget -= 1

    def _rename(self, dyn: DynInstr) -> None:
        for reg in dyn.static.src_regs:
            dyn.producers[reg] = self.rename.get(reg)
        roots = set()
        tainted = False
        for producer in dyn.producers.values():
            if producer is None:
                continue
            roots |= producer.taint_roots
            if producer.is_load:
                roots.add(producer.seq)
        dyn.taint_roots = frozenset(roots)
        for reg in dyn.static.dst_regs:
            self.rename[reg] = dyn

    # ==================================================================
    # issue + execute
    # ==================================================================

    def _operands_ready(self, dyn: DynInstr) -> bool:
        if dyn.is_store:
            # Stores issue their address once base/index are ready; the data
            # operand may arrive later (checked at forward/commit time).
            needed = {r for r in (dyn.static.rn, dyn.static.rm)
                      if r is not None and r != XZR}
        else:
            needed = set(dyn.static.src_regs)
        for reg in needed:
            producer = dyn.producers.get(reg)
            if producer is not None and not producer.completed:
                return False
        return True

    def _blocked_by_sb(self, dyn: DynInstr) -> bool:
        return any(sb.seq < dyn.seq and sb.state is not InstrState.COMMITTED
                   for sb in self._pending_sb)

    def _issue(self) -> None:
        budget = self.config.core.issue_width
        for dyn in sorted(self.iq, key=lambda d: d.seq):
            if budget <= 0:
                break
            if dyn.squashed:
                self.iq.remove(dyn)
                continue
            if not self._operands_ready(dyn):
                continue
            if self._blocked_by_sb(dyn):
                continue
            if not self.policy.may_issue(dyn):
                self.mark_restricted(dyn)
                continue
            if not self.ports.try_claim(dyn.static.klass):
                continue
            self.iq.remove(dyn)
            dyn.state = InstrState.ISSUED
            dyn.issue_cycle = self.cycle
            if dyn.restricted_cycle >= 0 and not dyn.is_load:
                # Issue-side restrictions (STT, DoM-style holds) lift the
                # moment the instruction issues; load restrictions lift when
                # the data is finally released in complete_load.
                self._note_restriction_lift(dyn)
            self._execute(dyn)
            budget -= 1

    def _latency(self, klass: InstrClass) -> int:
        core = self.config.core
        return {
            InstrClass.ALU: core.alu_latency,
            InstrClass.MUL: core.mul_latency,
            InstrClass.DIV: core.div_latency,
            InstrClass.BRANCH: core.branch_latency,
            InstrClass.MTE: core.alu_latency,
            InstrClass.LOAD: core.agu_latency,
            InstrClass.STORE: core.agu_latency,
        }.get(klass, 1)

    def _execute(self, dyn: DynInstr) -> None:
        """Compute ``dyn``'s result (or address) and schedule completion."""
        static = dyn.static
        op = static.op
        # Oracle taint flows through every computed value.
        dyn.secret_tainted = dyn.secret_tainted or any(
            p is not None and p.secret_tainted for p in dyn.producers.values())
        if dyn.secret_tainted and self.is_speculative(dyn):
            self.leak_log.append({
                "kind": "contention", "seq": dyn.seq, "pc": dyn.pc,
                "klass": static.klass.value, "cycle": self.cycle})

        if static.is_memory:
            base = self.value_of(dyn, static.rn) if static.rn is not None else 0
            offset = (self.value_of(dyn, static.rm)
                      if static.rm is not None else (static.imm or 0))
            dyn.addr = (base + offset) & _WORD_MASK
            dyn.addr_ready_cycle = self.cycle + self.config.core.agu_latency
            if dyn.is_store:
                self._schedule_completion(dyn, self.cycle + self.config.core.agu_latency)
            # Loads complete later, via the LSQ.
            return

        latency = self._latency(static.klass)
        if static.is_branch:
            if dyn.resolved:  # B/BL resolved at fetch; BL just writes LR
                if op in (Opcode.BL,):
                    dyn.result = dyn.pc + INSTR_BYTES
            else:
                self._compute_branch_outcome(dyn)
            self._schedule_completion(dyn, self.cycle + latency)
            return
        dyn.result = self._compute_alu(dyn)
        self._schedule_completion(dyn, self.cycle + latency)

    def _compute_alu(self, dyn: DynInstr) -> int:
        static = dyn.static
        op = static.op
        a = self.value_of(dyn, static.rn) if static.rn is not None else 0
        b = (self.value_of(dyn, static.rm) if static.rm is not None
             else (static.imm or 0))
        if op is Opcode.ADD:
            return (a + b) & _WORD_MASK
        if op is Opcode.SUB:
            return (a - b) & _WORD_MASK
        if op is Opcode.AND:
            return a & b
        if op is Opcode.ORR:
            return a | b
        if op is Opcode.EOR:
            return a ^ b
        if op is Opcode.LSL:
            return (a << (b & 63)) & _WORD_MASK
        if op is Opcode.LSR:
            return (a >> (b & 63)) & _WORD_MASK
        if op is Opcode.ASR:
            return (_to_signed(a) >> (b & 63)) & _WORD_MASK
        if op is Opcode.MUL:
            return (a * b) & _WORD_MASK
        if op is Opcode.UDIV:
            return (a // b) & _WORD_MASK if b else 0
        if op is Opcode.MOV:
            return b if static.rn is None else a
        if op is Opcode.CMP:
            return self._flags_of_sub(a, b)
        if op is Opcode.IRG:
            tag = self._rng.randrange(self.config.mte.num_tags)
            return with_key(a, tag, self.config.mte.tag_bits)
        if op is Opcode.ADDG:
            key = key_of(a, self.config.mte.tag_bits)
            new_key = (key + (static.tag_imm or 0)) % self.config.mte.num_tags
            return with_key((a + (static.imm or 0)) & _WORD_MASK, new_key,
                            self.config.mte.tag_bits)
        if op is Opcode.SUBG:
            key = key_of(a, self.config.mte.tag_bits)
            new_key = (key - (static.tag_imm or 0)) % self.config.mte.num_tags
            return with_key((a - (static.imm or 0)) & _WORD_MASK, new_key,
                            self.config.mte.tag_bits)
        raise SimulationError(f"unhandled ALU opcode {op.value}")

    @staticmethod
    def _flags_of_sub(a: int, b: int) -> int:
        """NZCV encoded as an integer value (N=8, Z=4, C=2, V=1)."""
        result = (a - b) & _WORD_MASK
        n = result >> 63
        z = int(result == 0)
        c = int(a >= b)
        sa, sb, sr = a >> 63, b >> 63, result >> 63
        v = int(sa != sb and sr != sa)
        return (n << 3) | (z << 2) | (c << 1) | v

    @staticmethod
    def _cond_holds(cond: Cond, flags: int) -> bool:
        n = bool(flags & 8)
        z = bool(flags & 4)
        c = bool(flags & 2)
        v = bool(flags & 1)
        return {
            Cond.EQ: z, Cond.NE: not z,
            Cond.LO: not c, Cond.HS: c,
            Cond.LT: n != v, Cond.GE: n == v,
            Cond.LE: z or (n != v), Cond.GT: (not z) and (n == v),
            Cond.MI: n, Cond.PL: not n,
        }[cond]

    def _compute_branch_outcome(self, dyn: DynInstr) -> None:
        static = dyn.static
        op = static.op
        next_pc = dyn.pc + INSTR_BYTES
        if op is Opcode.B_COND:
            flags = self.value_of(dyn, FLAGS_REG)
            dyn.actual_taken = self._cond_holds(static.cond, flags)
            dyn.actual_target = static.target_addr if dyn.actual_taken else next_pc
        elif op in (Opcode.CBZ, Opcode.CBNZ):
            value = self.value_of(dyn, static.rn)
            zero = value == 0
            dyn.actual_taken = zero if op is Opcode.CBZ else not zero
            dyn.actual_target = static.target_addr if dyn.actual_taken else next_pc
        elif op in (Opcode.BR, Opcode.BLR):
            dyn.actual_taken = True
            dyn.actual_target = strip_tag(self.value_of(dyn, static.rn))
            if op is Opcode.BLR:
                dyn.result = next_pc  # LR
        elif op is Opcode.RET:
            dyn.actual_taken = True
            dyn.actual_target = strip_tag(self.value_of(dyn, LR))
        else:  # pragma: no cover - B/BL resolve at fetch
            raise SimulationError(f"unexpected branch {op.value} at execute")

    def _schedule_completion(self, dyn: DynInstr, cycle: int) -> None:
        cycle = max(cycle, self.cycle + 1)
        dyn.complete_cycle = cycle
        self._completions.setdefault(cycle, []).append(dyn)

    # ==================================================================
    # writeback
    # ==================================================================

    def _writeback(self) -> None:
        for dyn in self._completions.pop(self.cycle, []):
            if dyn.squashed:
                continue
            dyn.state = InstrState.COMPLETED
            dyn.speculative_at_complete = (
                self.is_speculative(dyn) or bool(dyn.bypassed_store_seqs))
            self.policy.on_execute(dyn)
            if dyn.is_branch and not dyn.resolved:
                self._resolve_branch(dyn)

    def _resolve_branch(self, dyn: DynInstr) -> None:
        dyn.resolved = True
        self._unresolved_branches.pop(dyn.seq, None)
        self.stats.branches += 1
        if self.occupancy is not None and dyn.fetch_cycle >= 0:
            self.occupancy.note_shadow(self.cycle - dyn.fetch_cycle)
        static = dyn.static
        history = dyn.bhb_snapshot
        if static.op in (Opcode.B_COND, Opcode.CBZ, Opcode.CBNZ):
            self.pht.train(dyn.pc, dyn.actual_taken, history)
        elif static.op in (Opcode.BR, Opcode.BLR):
            self.btb.train(dyn.pc, dyn.actual_target, history)

        if self.fetch_blocked_on is dyn:
            # Fetch was stalled waiting for this target: resume, no squash.
            self.fetch_blocked_on = None
            self.fetch_pc = dyn.actual_target
            self.fetch_resume_cycle = self.cycle + 1
            self.policy.on_branch_resolved(dyn, mispredicted=False)
            return

        mispredicted = (dyn.actual_taken != dyn.pred_taken
                        or (dyn.actual_taken
                            and dyn.actual_target != dyn.pred_target))
        dyn.mispredicted = mispredicted
        if mispredicted:
            self.stats.branch_mispredicts += 1
            if static.op in (Opcode.B_COND, Opcode.CBZ, Opcode.CBNZ):
                self.bhb.restore(history)
                self.bhb.update(dyn.actual_taken)
            self.squash_from(dyn.seq + 1, dyn.actual_target,
                             reason="mispredict")
        self.policy.on_branch_resolved(dyn, mispredicted)

    # ==================================================================
    # squash
    # ==================================================================

    def squash_from(self, seq: int, redirect_pc: int, reason: str = "") -> None:
        """Squash every instruction with sequence >= ``seq`` and refetch."""
        trace = self.trace
        for dyn in self.rob:
            if dyn.seq >= seq:
                dyn.squashed = True
                dyn.squash_cycle = self.cycle
                self.stats.squashed += 1
                if trace is not None:
                    trace.on_squash(dyn, self.cycle, reason)
        for dyn in self.fetch_queue:
            dyn.squashed = True
            dyn.squash_cycle = self.cycle
            self.stats.squashed += 1
            if trace is not None:
                trace.on_squash(dyn, self.cycle, reason)
        self.rob = [d for d in self.rob if d.seq < seq]
        self.iq = [d for d in self.iq if d.seq < seq]
        self.fetch_queue = [d for d in self.fetch_queue if d.seq < seq]
        self.lsq.squash_from(seq)
        self._pending_sb = [d for d in self._pending_sb if d.seq < seq]
        self._unresolved_branches = {
            s: d for s, d in self._unresolved_branches.items() if s < seq}
        self._unsafe_broadcasts = [
            (c, d) for c, d in self._unsafe_broadcasts if d.seq < seq]
        self._rebuild_rename()
        self.fetch_pc = redirect_pc
        self.fetch_resume_cycle = self.cycle + getattr(
            self.config.core, "mispredict_penalty", MISPREDICT_REDIRECT_PENALTY)
        self.fetch_blocked_on = None
        self._fetch_stopped = False
        self.policy.on_squash(seq)

    def _rebuild_rename(self) -> None:
        self.rename = {}
        for dyn in self.rob:
            for reg in dyn.static.dst_regs:
                self.rename[reg] = dyn

    # ==================================================================
    # load completion + SpecASan plumbing
    # ==================================================================

    def complete_load(self, load: DynInstr, value: int, ready_cycle: int,
                      source_address: Optional[int] = None,
                      stale: bool = False,
                      forwarded_store: Optional[DynInstr] = None) -> None:
        """Deliver a load's value and schedule its completion."""
        load.result = value
        address = strip_tag(load.addr)
        if self._in_secret_range(address) or (
                source_address is not None
                and self._in_secret_range(source_address)):
            load.secret_tainted = True
            self.leak_log.append({
                "kind": "secret-access", "seq": load.seq, "pc": load.pc,
                "addr": address, "stale": stale, "cycle": self.cycle,
                "speculative": self.is_speculative(load)})
        if forwarded_store is not None and forwarded_store.secret_tainted:
            load.secret_tainted = True
        if load.restricted_cycle >= 0:
            self._note_restriction_lift(load)
        self._schedule_completion(load, max(ready_cycle, self.cycle + 1))

    def _in_secret_range(self, address: int) -> bool:
        return any(lo <= address < hi for lo, hi in self.secret_ranges)

    def note_memory_issue(self, load: DynInstr, speculative: bool) -> None:
        """Oracle hook: a load reached the memory subsystem.

        If its *address* derives from the secret, its cache footprint is a
        transmission (the TRANSMIT stage of Figure 1).
        """
        address_tainted = any(
            p is not None and p.secret_tainted
            for r, p in load.producers.items()
            if r in (load.static.rn, load.static.rm))
        if address_tainted:
            self.leak_log.append({
                "kind": "cache-transmit", "seq": load.seq, "pc": load.pc,
                "addr": strip_tag(load.addr), "cycle": self.cycle,
                "speculative": speculative})

    def schedule_unsafe_broadcast(self, unsafe: DynInstr) -> None:
        """§3.4: the ROB marks dependent memory instructions unsafe; the
        broadcast takes ``unsafe_broadcast_latency`` cycles."""
        deliver_at = self.cycle + self.config.core.unsafe_broadcast_latency
        self._unsafe_broadcasts.append((deliver_at, unsafe))

    def _deliver_unsafe_broadcasts(self) -> None:
        remaining = []
        for deliver_at, unsafe in self._unsafe_broadcasts:
            if deliver_at > self.cycle:
                remaining.append((deliver_at, unsafe))
                continue
            for dyn in self.rob:
                if (dyn.seq > unsafe.seq and dyn.static.is_memory
                        and unsafe.seq in dyn.taint_roots):
                    dyn.tcs = TagCheckStatus.UNSAFE
                    dyn.unsafe_dependent = True
                    dyn.ssa = False
        self._unsafe_broadcasts = remaining

    # ==================================================================
    # commit
    # ==================================================================

    def _commit(self) -> None:
        budget = self.config.core.commit_width
        while budget > 0 and self.rob:
            head = self.rob[0]
            if head.is_load and not head.completed:
                if self._load_faults_at_head(head):
                    return
                break
            if head.is_load and head.verify_pending:
                break  # transient value awaiting its full-address/fill check
            if not head.completed:
                break
            if head.is_store:
                if not self._commit_store(head):
                    return
            if head.static.op is Opcode.HALT:
                self._retire(head)
                self.halted = True
                return
            if head.is_load:
                self.stats.loads_committed += 1
                self.mdp.decay(head.pc)
            self._retire(head)
            budget -= 1

    def _load_faults_at_head(self, head: DynInstr) -> bool:
        """A withheld (unsafe) load that reached the ROB head is bound to
        commit: its mismatch is architectural — raise the MTE fault (§3.4)."""
        if (self.policy.mte_enabled and head.tcs is TagCheckStatus.UNSAFE
                and head.response is not None and head.response.data_withheld
                and self.cycle >= head.response.ready_cycle):
            self._raise_tag_fault(head)
            return True
        if (head.response is not None and head.response.faulted
                and self.cycle >= head.response.ready_cycle):
            # Architectural access to unmapped memory: fatal (SIGSEGV).
            self.fault = TagCheckFault(strip_tag(head.addr or 0), 0, 0,
                                       pc=head.pc)
            self.halted = True
            return True
        return False

    def _commit_store(self, store: DynInstr) -> bool:
        """Perform the architectural effects of a store; False on fault."""
        if self.policy.mte_enabled and store.tcs is TagCheckStatus.UNSAFE:
            self._raise_tag_fault(store)
            return False
        value = self.read_store_value(store)
        if value is None:
            raise SimulationError(
                f"store #{store.seq} committed without data")
        if store.static.op is Opcode.STG:
            tag = key_of(value, self.config.mte.tag_bits)
            self.hierarchy.store_tag(store.addr, tag, self.core_id, self.cycle)
        else:
            data = value.to_bytes(8, "little")[:store.static.memory_bytes]
            self.hierarchy.commit_store(store.addr, data, self.core_id,
                                        self.cycle)
        self.stats.stores_committed += 1
        return True

    def _retire(self, head: DynInstr) -> None:
        self.rob.pop(0)
        head.state = InstrState.COMMITTED
        head.commit_cycle = self.cycle
        if self.trace is not None:
            self.trace.on_retire(head, self.cycle)
        for reg in head.static.dst_regs:
            if head.result is not None:
                self.arf[reg] = head.result
        if head.static.op is Opcode.SB and head in self._pending_sb:
            self._pending_sb.remove(head)
        self.lsq.remove_committed(head)
        self.policy.on_commit(head)
        self.stats.committed += 1
        if head.was_restricted:
            self.stats.restricted_committed += 1
        self._last_commit_cycle = self.cycle
        self.last_commit_pc = head.pc
        if self.watchdog is not None:
            self.watchdog.on_commit(self, head)

    def _raise_tag_fault(self, dyn: DynInstr) -> None:
        """Record the architectural MTE fault and halt the core (the OS
        would deliver SIGSEGV; the harness inspects :attr:`fault`)."""
        lock = self.hierarchy.read_tag(dyn.addr) if dyn.addr is not None else 0
        self.fault = TagCheckFault(
            strip_tag(dyn.addr or 0),
            key_of(dyn.addr or 0, self.config.mte.tag_bits), lock, pc=dyn.pc)
        self.stats.tag_faults += 1
        self.halted = True

    # ==================================================================
    # checkpointing
    # ==================================================================

    def _live_instrs(self) -> Dict[int, DynInstr]:
        """Every DynInstr reachable from core state, keyed by seq.

        The closure starts from all pipeline containers and chases
        ``producers`` edges transitively: committed instructions stay
        reachable through rename/consumer references (commit does not
        clear the rename table), so they must be serialized too for the
        object graph to rebuild identically.
        """
        roots: List[DynInstr] = []
        roots += self.rob
        roots += self.iq
        roots += self.fetch_queue
        roots += self.rename.values()
        roots += self.lsq.lq
        roots += self.lsq.sq
        roots += self.lsq._stale_pending
        for load, store, _cycle in self.lsq._partial_pending:
            roots += (load, store)
        for pending in self._completions.values():
            roots += pending
        roots += self._unresolved_branches.values()
        roots += self._pending_sb
        roots += (dyn for _cycle, dyn in self._unsafe_broadcasts)
        if self.fetch_blocked_on is not None:
            roots.append(self.fetch_blocked_on)
        live: Dict[int, DynInstr] = {}
        stack = roots
        while stack:
            dyn = stack.pop()
            if dyn.seq in live:
                continue
            live[dyn.seq] = dyn
            for producer in dyn.producers.values():
                if producer is not None and producer.seq not in live:
                    stack.append(producer)
        return live

    def state_dict(self) -> dict:
        """Complete serializable core state (one core; hierarchy separate).

        Must be taken between cycles (as :meth:`run`'s ``until_cycle``
        pause guarantees): per-cycle scratch such as the exec ports'
        claimed set is then empty by construction.
        """
        instrs = self._live_instrs()
        rng_state = self._rng.getstate()
        return {
            "core_id": self.core_id,
            "cycle": self.cycle,
            "seq": self.seq,
            "arf": list(self.arf),
            "rng": [rng_state[0], list(rng_state[1]), rng_state[2]],
            "halted": self.halted,
            "fault": None if self.fault is None else {
                "address": self.fault.address, "key": self.fault.key,
                "lock": self.fault.lock, "pc": self.fault.pc},
            "last_commit_cycle": self._last_commit_cycle,
            "last_commit_pc": self.last_commit_pc,
            "fetch_pc": self.fetch_pc,
            "fetch_resume_cycle": self.fetch_resume_cycle,
            "fetch_blocked_on": (None if self.fetch_blocked_on is None
                                 else self.fetch_blocked_on.seq),
            "fetch_stopped": self._fetch_stopped,
            "instrs": [instrs[seq].state_dict() for seq in sorted(instrs)],
            "rob": [d.seq for d in self.rob],
            "iq": [d.seq for d in self.iq],
            "fetch_queue": [d.seq for d in self.fetch_queue],
            "rename": [[reg, d.seq] for reg, d in self.rename.items()],
            "completions": [[cycle, [d.seq for d in pending]]
                            for cycle, pending
                            in sorted(self._completions.items())],
            "unresolved_branches": sorted(self._unresolved_branches),
            "pending_sb": [d.seq for d in self._pending_sb],
            "unsafe_broadcasts": [[cycle, d.seq]
                                  for cycle, d in self._unsafe_broadcasts],
            "lsq": self.lsq.state_dict(),
            "stats": self.stats.state_dict(),
            "ports": self.ports.state_dict(),
            "bhb": self.bhb.state_dict(),
            "pht": self.pht.state_dict(),
            "btb": self.btb.state_dict(),
            "rsb": self.rsb.state_dict(),
            "mdp": self.mdp.state_dict(),
            "policy": self.policy.state_dict(),
            "secret_ranges": [[lo, hi] for lo, hi in self.secret_ranges],
            "leak_log": [dict(entry) for entry in self.leak_log],
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore :meth:`state_dict` output into this freshly built core.

        The core must have been constructed against the *same* program and
        config (the checkpoint header's config hash enforces this); static
        instructions are rehydrated from the program text by pc.
        """
        from repro.errors import CheckpointError
        if state["core_id"] != self.core_id:
            raise CheckpointError(
                f"checkpoint is for core {state['core_id']}, "
                f"restoring into core {self.core_id}", kind="state-mismatch")
        # Rebuild every live instruction, then rewire seq cross-references
        # into object references in a second pass.
        instrs: Dict[int, DynInstr] = {}
        for entry in state["instrs"]:
            static = self.program.fetch(entry["pc"])
            if static is None:
                raise CheckpointError(
                    f"checkpointed instruction #{entry['seq']} at "
                    f"pc={entry['pc']:#x} is outside the program text",
                    kind="state-mismatch")
            instrs[entry["seq"]] = DynInstr.from_state_dict(entry, static)
        for entry in state["instrs"]:
            dyn = instrs[entry["seq"]]
            dyn.producers = {
                reg: (None if seq is None else instrs[seq])
                for reg, seq in entry["producers"]}

        self.cycle = state["cycle"]
        self.seq = state["seq"]
        self.arf = list(state["arf"])
        rng = state["rng"]
        self._rng.setstate((rng[0], tuple(rng[1]), rng[2]))
        self.halted = state["halted"]
        fault = state["fault"]
        self.fault = None if fault is None else TagCheckFault(
            fault["address"], fault["key"], fault["lock"], pc=fault["pc"])
        self._last_commit_cycle = state["last_commit_cycle"]
        self.last_commit_pc = state["last_commit_pc"]
        self.fetch_pc = state["fetch_pc"]
        self.fetch_resume_cycle = state["fetch_resume_cycle"]
        self.fetch_blocked_on = (
            None if state["fetch_blocked_on"] is None
            else instrs[state["fetch_blocked_on"]])
        self._fetch_stopped = state["fetch_stopped"]

        self.rob = [instrs[seq] for seq in state["rob"]]
        self.iq = [instrs[seq] for seq in state["iq"]]
        self.fetch_queue = [instrs[seq] for seq in state["fetch_queue"]]
        self.rename = {reg: instrs[seq] for reg, seq in state["rename"]}
        self._completions = {
            cycle: [instrs[seq] for seq in seqs]
            for cycle, seqs in state["completions"]}
        self._unresolved_branches = {
            seq: instrs[seq] for seq in state["unresolved_branches"]}
        self._pending_sb = [instrs[seq] for seq in state["pending_sb"]]
        self._unsafe_broadcasts = [
            (cycle, instrs[seq])
            for cycle, seq in state["unsafe_broadcasts"]]
        self.lsq.load_state_dict(state["lsq"], instrs)
        self.stats.load_state_dict(state["stats"])
        self.ports.load_state_dict(state["ports"])
        self.bhb.load_state_dict(state["bhb"])
        self.pht.load_state_dict(state["pht"])
        self.btb.load_state_dict(state["btb"])
        self.rsb.load_state_dict(state["rsb"])
        self.mdp.load_state_dict(state["mdp"])
        self.policy.load_state_dict(state["policy"])
        self.secret_ranges = [(lo, hi) for lo, hi in state["secret_ranges"]]
        self.leak_log = [dict(entry) for entry in state["leak_log"]]
