"""The Load/Store Queues (§3.3.2) and the memory stage.

The LSQ is where most of the paper's action happens:

- loads search the store queue for forwarding opportunities; under SpecASan
  forwarding additionally requires the *address keys* of the load and the
  store to match (§3.4 "Store-to-Load Forwarding") — the rule that stops
  Fallout;
- loads older-store-unknown may speculate past them when the memory
  dependence predictor allows (the Spectre-STL window), recording the
  bypassed stores so a later address resolution can detect the ordering
  violation and replay;
- issued loads receive a :class:`~repro.memory.request.MemResponse`; a
  pending-LFB stale forward models the RIDL/ZombieLoad window, verified
  against the real fill on arrival (a mismatch triggers a machine-clear
  replay, as on real hardware);
- the tag-check outcome drives the ``tcs`` field and, through the policy,
  SpecASan's selective delay.
"""

from __future__ import annotations

from typing import List, Optional, TYPE_CHECKING

from repro.isa.instructions import Opcode
from repro.memory.request import AccessKind, MemRequest
from repro.mte.tags import key_of, strip_tag, with_key
from repro.pipeline.dyninstr import DynInstr, TagCheckStatus

if TYPE_CHECKING:  # pragma: no cover
    from repro.pipeline.core import Core


class LoadStoreQueues:
    """Split load queue / store queue with forwarding and disambiguation."""

    def __init__(self, core: "Core"):
        self.core = core
        self.lq: List[DynInstr] = []
        self.sq: List[DynInstr] = []
        self.lq_capacity = core.config.core.lq_entries
        self.sq_capacity = core.config.core.sq_entries
        #: Loads that consumed stale LFB data, awaiting fill verification.
        self._stale_pending: List[DynInstr] = []
        #: Partial-address (loosenet) forwards awaiting full-address check:
        #: (load, store, verify_cycle).  Mismatches machine-clear — Fallout.
        self._partial_pending: List[tuple] = []
        #: Load PCs that already machine-cleared once; they replay with
        #: conservative (full-address) disambiguation.
        self._partial_blocked_pcs: set = set()

    # -- dispatch ---------------------------------------------------------------

    def can_dispatch(self, dyn: DynInstr) -> bool:
        if dyn.is_load:
            return len(self.lq) < self.lq_capacity
        if dyn.is_store:
            return len(self.sq) < self.sq_capacity
        return True

    def dispatch(self, dyn: DynInstr) -> None:
        if dyn.is_load:
            self.lq.append(dyn)
        elif dyn.is_store:
            self.sq.append(dyn)

    # -- squash -----------------------------------------------------------------

    def squash_from(self, seq: int) -> None:
        """Drop every entry with sequence number >= seq."""
        self.lq = [d for d in self.lq if d.seq < seq]
        self.sq = [d for d in self.sq if d.seq < seq]
        self._stale_pending = [d for d in self._stale_pending if d.seq < seq]
        self._partial_pending = [
            (l, s, c) for l, s, c in self._partial_pending if l.seq < seq]

    def remove_committed(self, dyn: DynInstr) -> None:
        if dyn.is_load and dyn in self.lq:
            self.lq.remove(dyn)
        elif dyn.is_store and dyn in self.sq:
            self.sq.remove(dyn)

    # -- checkpointing ------------------------------------------------------------

    def state_dict(self) -> dict:
        """Queue membership as sequence numbers (the instruction payloads
        live in the core's instruction table)."""
        return {
            "lq": [d.seq for d in self.lq],
            "sq": [d.seq for d in self.sq],
            "stale_pending": [d.seq for d in self._stale_pending],
            "partial_pending": [[l.seq, s.seq, c]
                                for l, s, c in self._partial_pending],
            "partial_blocked_pcs": sorted(self._partial_blocked_pcs),
        }

    def load_state_dict(self, state: dict, instrs: dict) -> None:
        """Restore queue membership; ``instrs`` maps seq -> DynInstr."""
        self.lq = [instrs[seq] for seq in state["lq"]]
        self.sq = [instrs[seq] for seq in state["sq"]]
        self._stale_pending = [instrs[seq]
                               for seq in state["stale_pending"]]
        self._partial_pending = [
            (instrs[load_seq], instrs[store_seq], cycle)
            for load_seq, store_seq, cycle in state["partial_pending"]]
        self._partial_blocked_pcs = set(state["partial_blocked_pcs"])

    # -- the memory stage ---------------------------------------------------------

    def tick(self, cycle: int) -> None:
        """One cycle of the memory pipeline."""
        self._verify_stale_forwards(cycle)
        self._verify_partial_forwards(cycle)
        self._process_store_addresses(cycle)
        self._process_loads(cycle)

    # .. partial-forward (loosenet) verification — the Fallout window ..........

    def _verify_partial_forwards(self, cycle: int) -> None:
        still_pending = []
        for load, store, verify_cycle in self._partial_pending:
            if load.squashed:
                continue
            if cycle < verify_cycle:
                still_pending.append((load, store, verify_cycle))
                continue
            # Full-address check: the partial match was wrong by construction
            # (exact matches take the normal forwarding path) — machine clear.
            self._partial_blocked_pcs.add(load.pc)
            self.core.stats.ordering_violations += 1
            self.core.squash_from(load.seq, load.pc, reason="loosenet-clear")
        self._partial_pending = still_pending

    # .. stale-forward verification (machine clear on mismatch) ..................

    def _verify_stale_forwards(self, cycle: int) -> None:
        still_pending = []
        for dyn in self._stale_pending:
            if dyn.squashed:
                continue
            response = dyn.response
            if response is None or cycle < response.ready_cycle:
                still_pending.append(dyn)
                continue
            real = int.from_bytes(response.data, "little") if response.data else None
            if real is not None and real != dyn.result:
                # The transient value was wrong: machine clear, replay.
                self.core.squash_from(dyn.seq, dyn.pc, reason="mds-verify")
            else:
                dyn.verify_pending = False  # stale data matched; it stands
        self._stale_pending = still_pending

    # .. stores ..................................................................

    def _process_store_addresses(self, cycle: int) -> None:
        for store in self.sq:
            if store.squashed or store.addr is None:
                continue
            if store.addr_ready_cycle > cycle:
                continue
            if not store.mem_issued:
                store.mem_issued = True
                self._check_ordering_violation(store)
                self._probe_store_tag(store, cycle)

    def _check_ordering_violation(self, store: DynInstr) -> None:
        """A store's address just resolved: younger loads that speculatively
        bypassed it and overlap must replay (memory-order violation)."""
        store_lo = strip_tag(store.addr)
        store_hi = store_lo + store.static.memory_bytes
        for load in self.lq:
            if load.squashed or load.seq < store.seq:
                continue
            if store.seq not in load.bypassed_store_seqs:
                continue
            if load.addr is None or not (load.mem_issued or load.completed):
                continue
            load_lo = strip_tag(load.addr)
            load_hi = load_lo + load.static.memory_bytes
            if load_lo < store_hi and store_lo < load_hi:
                self.core.mdp.train_violation(load.pc)
                self.core.stats.ordering_violations += 1
                self.core.squash_from(load.seq, load.pc, reason="mem-order")
                return

    def _probe_store_tag(self, store: DynInstr, cycle: int) -> None:
        """Issue the store's tag probe (read-for-ownership path)."""
        flags = self.core.policy.request_flags(store)
        if store.static.op is Opcode.STG:
            return  # STG writes tag storage; it is not itself checked.
        if not flags.check_tag:
            return
        response = self.core.hierarchy.access(MemRequest(
            address=store.addr, size=store.static.memory_bytes,
            kind=AccessKind.STORE, cycle=cycle, check_tag=True,
            block_fill_on_mismatch=flags.block_fill_on_mismatch,
            speculative=self.core.is_speculative(store),
            core_id=self.core.core_id))
        store.response = response
        store.tcs = TagCheckStatus.WAIT
        self.core.stats.tag_checks += 1
        if self.core.trace is not None:
            self.core.trace.on_defense_event(store, cycle, "tagcheck",
                                             ok=response.tag_ok)
        if response.tag_ok is False:
            self.core.stats.tag_mismatches += 1
            self.core.policy.on_tag_outcome(store, False)
        else:
            self.core.policy.on_tag_outcome(store, True)

    # .. loads ...................................................................

    def _process_loads(self, cycle: int) -> None:
        for load in list(self.lq):
            if load.squashed or load.completed:
                continue
            if load.addr is None or load.addr_ready_cycle > cycle:
                continue
            if load.response is not None:
                self._advance_pending_load(load, cycle)
                continue
            if load.forwarded_from is not None:
                continue  # forwarding already scheduled
            self._try_start_load(load, cycle)

    def _advance_pending_load(self, load: DynInstr, cycle: int) -> None:
        """Drive a load whose memory request is outstanding."""
        response = load.response
        # Report the tag outcome to the policy once it is known.
        if (load.tcs is TagCheckStatus.WAIT
                and cycle >= response.tag_known_cycle
                and response.tag_ok is not None):
            if self.core.trace is not None:
                self.core.trace.on_defense_event(load, cycle, "tag-outcome",
                                                 ok=response.tag_ok)
            self.core.policy.on_tag_outcome(load, response.tag_ok)
        # MDS window: the LFB forwards the pending entry's *stale* bytes to
        # any load that hits it before the fill arrives; the value is
        # verified at fill time and machine-cleared on mismatch.  Crucially
        # the load need not be branch-speculative — which is exactly why
        # RIDL/ZombieLoad evade STT and GhostMinion (§4.1).
        flags = self.core.policy.request_flags(load)
        if (response.stale_data is not None and not load.used_stale_data
                and flags.allow_stale_forward
                and cycle >= response.stale_ready_cycle
                and cycle < response.ready_cycle):
            value = int.from_bytes(response.stale_data, "little")
            load.used_stale_data = True
            load.verify_pending = True
            self.core.stats.stale_forwards += 1
            self._stale_pending.append(load)
            offset = strip_tag(load.addr) % self.core.hierarchy.line_bytes
            stale_source = (response.stale_line_address + offset
                            if response.stale_line_address >= 0 else None)
            self.core.complete_load(load, value, cycle,
                                    source_address=stale_source,
                                    stale=True)
            return
        if cycle < response.ready_cycle:
            return
        if response.data_withheld:
            # SpecASan: unsafe access — no data, the entry waits for
            # speculation to resolve (§3.4); the commit stage faults if it
            # turns out to be on the committed path.
            if not load.was_restricted:
                self.core.stats.unsafe_delays += 1
                if self.core.trace is not None:
                    self.core.trace.on_defense_event(
                        load, cycle, "withheld",
                        served_from=response.served_from.value)
            self.core.mark_restricted(load)
            return
        if load.used_stale_data:
            return  # verification path handles it
        if (load.bypassed_store_seqs
                and self.core.policy.must_hold_bypass_data(load)
                and self.core._any_bypassed_unresolved(load)):
            # SpecASan's Spectre-STL rule: the access was issued (tag check +
            # cache warm) but its value is withheld until the SQ resolves the
            # memory-dependence speculation (§4.1).
            self.core.mark_restricted(load)
            return
        if not self.core.policy.on_load_data_ready(load, response):
            return
        if load.static.op is Opcode.LDG:
            # LDG replaces the pointer's key with the granule's lock.
            value = with_key(load.addr, self.core.hierarchy.read_tag(load.addr),
                             self.core.config.mte.tag_bits)
        else:
            value = int.from_bytes(
                response.data[:load.static.memory_bytes], "little")
        self.core.complete_load(load, value, cycle)

    def _try_start_load(self, load: DynInstr, cycle: int) -> None:
        """Attempt forwarding, dependence speculation, or a memory access."""
        if not self.core.policy.may_issue_load(load):
            self.core.mark_restricted(load)
            return

        load_lo = strip_tag(load.addr)
        load_hi = load_lo + load.static.memory_bytes
        unknown_older: List[DynInstr] = []
        match: Optional[DynInstr] = None
        for store in self.sq:
            if store.squashed or store.seq >= load.seq:
                continue
            if store.static.op is Opcode.STG:
                # Tag stores order like stores but never forward data: a
                # load touching the same granule waits for the retag; an
                # unresolved STG is bypassed like any unresolved store (the
                # ordering-violation check replays on actual overlap).
                if store.addr is None or store.addr_ready_cycle > cycle:
                    unknown_older.append(store)
                    continue
                stg_lo = strip_tag(store.addr) & ~15
                if stg_lo < load_hi and load_lo < stg_lo + 16:
                    if load.static.op is Opcode.LDG:
                        # LDG forwards the in-flight allocation tag straight
                        # from the store queue (the tag analogue of STLF).
                        value = self.core.read_store_value(store)
                        if value is not None:
                            tag = key_of(value,
                                         self.core.config.mte.tag_bits)
                            load.forwarded_from = store.seq
                            self.core.stats.store_forwards += 1
                            self.core.complete_load(
                                load, with_key(load.addr, tag,
                                               self.core.config.mte.tag_bits),
                                cycle + 1, forwarded_store=store)
                            return
                    return  # data loads wait until the STG commits
                continue
            if store.addr is None or store.addr_ready_cycle > cycle:
                unknown_older.append(store)
                continue
            store_lo = strip_tag(store.addr)
            store_hi = store_lo + store.static.memory_bytes
            if load_lo < store_hi and store_lo < load_hi:
                match = store  # youngest older match wins (list is in order)

        if match is not None:
            self._try_forward(load, match, cycle, unknown_older)
            return

        if self._try_partial_forward(load, cycle, load_lo):
            return

        if unknown_older:
            if self.core.mdp.predicts_dependence(load.pc):
                return  # conservative: wait for older store addresses
            load.bypassed_store_seqs = frozenset(
                s.seq for s in unknown_older) | load.bypassed_store_seqs
        self._issue_to_memory(load, cycle)

    def _try_partial_forward(self, load: DynInstr, cycle: int,
                             load_lo: int) -> bool:
        """Loosenet partial-address store forwarding (the Fallout window).

        Real store buffers match loads against stores by page offset first
        and forward immediately; the full-address check arrives a few cycles
        later and machine-clears on mismatch.  A load whose page offset
        aliases an in-flight store transiently receives that store's data.
        Under SpecASan the forward additionally requires matching address
        keys (§3.4), which is what stops Fallout.
        """
        if load.pc in self._partial_blocked_pcs:
            return False
        for store in reversed(self.sq):
            if (store.squashed or store.seq >= load.seq or store.addr is None
                    or store.addr_ready_cycle > cycle
                    or store.static.op is Opcode.STG):
                continue
            store_lo = strip_tag(store.addr)
            if store_lo == load_lo or (store_lo & 0xFFF) != (load_lo & 0xFFF):
                continue
            if store.static.memory_bytes < load.static.memory_bytes:
                continue
            value = self.core.read_store_value(store)
            if value is None:
                continue
            if not self.core.policy.may_forward_store(store, load):
                self.core.stats.forward_blocked += 1
                self.core.mark_restricted(load)
                # No forward; the load proceeds to memory as usual.
                return False
            self.core.stats.store_forwards += 1
            load.forwarded_from = store.seq
            load.verify_pending = True
            # The full-address (finenet) check lands several cycles after
            # the loosenet forward — Fallout's transient window.
            self._partial_pending.append((load, store, cycle + 8))
            self.core.complete_load(
                load, value & ((1 << (8 * load.static.memory_bytes)) - 1),
                cycle + 1, forwarded_store=store)
            return True
        return False

    def _try_forward(self, load: DynInstr, store: DynInstr, cycle: int,
                     unknown_older: List[DynInstr]) -> None:
        store_lo = strip_tag(store.addr)
        store_hi = store_lo + store.static.memory_bytes
        load_lo = strip_tag(load.addr)
        load_hi = load_lo + load.static.memory_bytes
        covers = store_lo <= load_lo and store_hi >= load_hi
        if not covers:
            return  # partial overlap: wait until the store commits
        if any(s.seq > store.seq for s in unknown_older):
            # A younger-than-match older store is unresolved; it could also
            # overlap.  Conservatively wait (keeps forwarding exact).
            return
        value = self.core.read_store_value(store)
        if value is None:
            return  # store data not produced yet
        if not self.core.policy.may_forward_store(store, load):
            # SpecASan: address keys differ — forwarding prevented (§3.4),
            # the load is an unsafe speculative access.
            self.core.stats.forward_blocked += 1
            self.core.mark_restricted(load)
            return
        offset = load_lo - store_lo
        width = store.static.memory_bytes
        data = (value & ((1 << (8 * width)) - 1)).to_bytes(width, "little")
        chunk = data[offset:offset + load.static.memory_bytes]
        load.forwarded_from = store.seq
        self.core.stats.store_forwards += 1
        self.core.complete_load(
            load, int.from_bytes(chunk, "little"), cycle + 1,
            forwarded_store=store)

    def _issue_to_memory(self, load: DynInstr, cycle: int) -> None:
        flags = self.core.policy.request_flags(load)
        speculative = (self.core.is_speculative(load)
                       or bool(load.bypassed_store_seqs))
        kind = AccessKind.TAG_LOAD if load.static.op is Opcode.LDG else AccessKind.LOAD
        if kind is AccessKind.TAG_LOAD:
            # LDG *reads* the allocation tag; it is not itself tag-checked
            # (its pointer key is, by design, possibly stale).
            flags = type(flags)(check_tag=False,
                                block_fill_on_mismatch=False,
                                fill_to_minion=flags.fill_to_minion,
                                allow_stale_forward=False)
        line = self.core.hierarchy.line_bytes
        crosses_line = (strip_tag(load.addr) % line
                        + load.static.memory_bytes) > line
        response = self.core.hierarchy.access(MemRequest(
            address=load.addr, size=load.static.memory_bytes, kind=kind,
            cycle=cycle, check_tag=flags.check_tag,
            block_fill_on_mismatch=flags.block_fill_on_mismatch,
            fill_to_minion=flags.fill_to_minion and speculative,
            speculative=speculative, core_id=self.core.core_id,
            seq=load.seq, assist=crosses_line))
        load.response = response
        load.mem_issued = True
        self.core.stats.loads_issued += 1
        if flags.check_tag:
            load.tcs = TagCheckStatus.WAIT
            self.core.stats.tag_checks += 1
            if self.core.trace is not None:
                self.core.trace.on_defense_event(load, cycle, "tagcheck")
            if response.tag_ok is False:
                self.core.stats.tag_mismatches += 1
        self.core.note_memory_issue(load, speculative)
