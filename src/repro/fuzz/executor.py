"""The differential executor: spec-lint vs. the simulator, candidate by
candidate.

One :class:`FuzzExecutor` owns the coverage map, the mutation parent
pool, and the run statistics for a (seeded) stream of candidates:

1. **Draw** — candidate *k* gets its own RNG stream
   (``stream(seed, "fuzz", "cand", k)``); after a warm-up prefix the
   engine prefers mutating a coverage-proven parent over fresh sampling.
2. **Lint** — the candidate's round-tripped program goes through
   :func:`~repro.analysis.gadgets.find_gadgets` with the
   :mod:`repro.analysis.hooks` coverage sink installed; the per-defense
   static verdict is the channel-filtered ``any(leaks_under(g, d))``.
3. **Execute** — the simulator oracle
   (:func:`~repro.attacks.common.run_attack_program`) is *coverage
   gated*: candidates that light up new analyzer features always run,
   the rest run every ``sim_every``-th draw, so simulator time
   concentrates where the analyzer is seeing new shapes.
4. **Triage** — a verdict mismatch is classified **soundness** (static
   safe, simulator leaks — the analyzer missed a gadget) or
   **precision** (static leak, simulator clean — the analyzer
   over-approximated), shrunk by :mod:`repro.fuzz.minimize`, and
   recorded as a replayable :class:`Disagreement`.
5. **Repair audit** — a budgeted slice of statically-leaking candidates
   additionally goes through :func:`repro.analysis.repair.plan`; a
   "repaired" program that still leaks (statically on the re-lint or
   dynamically on the simulator) is a repair-soundness finding, same
   triage path.

Disagreements are the *product*, never exceptions
(:class:`~repro.errors.FuzzError` stays reserved for harness failures);
a clean analyzer yields an empty ``disagreements`` list and a grown
coverage frontier.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis import hooks
from repro.analysis import repair as repair_mod
from repro.analysis.gadgets import Gadget, find_gadgets, leaks_under
from repro.attacks.common import run_attack_program
from repro.config import DefenseKind
from repro.errors import AnalysisError, FuzzError, SimulationError
from repro.fuzz.coverage import CoverageMap
from repro.fuzz.generator import (
    build,
    CandidateSpec,
    FuzzCandidate,
    GeneratorBias,
    mutate,
    sample_spec,
)
from repro.fuzz.minimize import minimize_source
from repro.rng import stream
from repro.telemetry.registry import StatsRegistry

#: Default oracle pair: the undefended baseline plus the paper's defense.
DEFAULT_DEFENSES = (DefenseKind.NONE, DefenseKind.SPECASAN)

#: Disagreement kinds (the triage classification).
SOUNDNESS = "soundness"    # static safe, simulator leaks
PRECISION = "precision"    # static leaks, simulator clean
REPAIR_UNSOUND = "repair-unsound"  # "repaired" program still leaks


@dataclass(frozen=True)
class FuzzConfig:
    """One fuzzing run's knobs (all deterministic given ``seed``)."""

    seed: int = 0xA5A5
    budget: int = 500
    defenses: Tuple[DefenseKind, ...] = DEFAULT_DEFENSES
    #: Simulate every Nth candidate even without new coverage.
    sim_every: int = 4
    #: Fresh-sample prefix before mutation kicks in.
    warmup: int = 32
    #: Mutation-parent pool cap (oldest evicted first).
    max_parents: int = 256
    #: Probability a post-warm-up candidate mutates a parent.
    mutate_prob: float = 0.7
    #: Repair-audit slots per run (each costs a plan + re-lint + sim).
    repair_budget: int = 4
    #: Cap on minimized findings per run (each costs a ddmin pass); extra
    #: equivalent-signature hits are counted, not re-shrunk.
    max_findings: int = 16
    #: Minimizer evaluation cap per disagreement.
    minimize_evals: int = 300
    #: Analyzer defects (:data:`repro.analysis.hooks.KNOWN_BUGS`) injected
    #: for the whole run — the smoke drill's lever; recorded in every
    #: finding so replay reinstates the same analyzer.
    inject: Tuple[str, ...] = ()
    bias: GeneratorBias = field(default_factory=GeneratorBias)

    def to_dict(self) -> dict:
        return {"seed": self.seed, "budget": self.budget,
                "defenses": [d.value for d in self.defenses],
                "sim_every": self.sim_every, "warmup": self.warmup,
                "max_parents": self.max_parents,
                "mutate_prob": self.mutate_prob,
                "repair_budget": self.repair_budget,
                "max_findings": self.max_findings,
                "minimize_evals": self.minimize_evals,
                "inject": sorted(self.inject),
                "bias": {"barrier_bias": self.bias.barrier_bias,
                         "contention_bias": self.bias.contention_bias}}

    @classmethod
    def from_dict(cls, data: dict) -> "FuzzConfig":
        return cls(seed=int(data["seed"]), budget=int(data["budget"]),
                   defenses=tuple(DefenseKind(d) for d in data["defenses"]),
                   sim_every=int(data["sim_every"]),
                   warmup=int(data["warmup"]),
                   max_parents=int(data["max_parents"]),
                   mutate_prob=float(data["mutate_prob"]),
                   repair_budget=int(data["repair_budget"]),
                   max_findings=int(data.get("max_findings", 16)),
                   minimize_evals=int(data["minimize_evals"]),
                   inject=tuple(data.get("inject", ())),
                   bias=GeneratorBias(
                       barrier_bias=bool(data["bias"]["barrier_bias"]),
                       contention_bias=bool(data["bias"]["contention_bias"])))


@dataclass
class Disagreement:
    """One triaged, minimized analyzer/simulator divergence."""

    kind: str                      # SOUNDNESS / PRECISION / REPAIR_UNSOUND
    defense: DefenseKind
    static_leaked: bool
    dynamic_leaked: bool
    spec: CandidateSpec
    #: The minimized ``.s`` reproducer (assembles and still disagrees).
    source_text: str
    secret_ranges: List[Tuple[int, int]]
    channel: str
    benign_values: List[int]
    secret_value: int
    secret_address: int
    original_lines: int
    minimized_lines: int
    #: Analyzer defects that were injected when this finding was made
    #: (empty for a genuine analyzer bug; replay reinstates these).
    injected: List[str] = field(default_factory=list)

    def to_dict(self) -> dict:
        return {"kind": self.kind, "defense": self.defense.value,
                "static_leaked": self.static_leaked,
                "dynamic_leaked": self.dynamic_leaked,
                "spec": self.spec.to_dict(),
                "secret_ranges": [list(r) for r in self.secret_ranges],
                "channel": self.channel,
                "benign_values": list(self.benign_values),
                "secret_value": self.secret_value,
                "secret_address": self.secret_address,
                "original_lines": self.original_lines,
                "minimized_lines": self.minimized_lines,
                "injected": sorted(self.injected)}

    def render(self) -> str:
        return (f"[{self.kind}] {self.spec.label} under "
                f"{self.defense.value}: static="
                f"{'leak' if self.static_leaked else 'safe'} "
                f"dynamic={'leak' if self.dynamic_leaked else 'safe'} "
                f"({self.original_lines} -> {self.minimized_lines} lines)")


def static_verdict(gadgets: Sequence[Gadget], channel: str,
                   defense: DefenseKind) -> bool:
    """Does spec-lint predict a ``channel`` leak under ``defense``?

    The simulator's oracle observes exactly one channel per program
    (probe-array recovery or contention events), so only gadgets able to
    transmit on that channel count toward the static prediction.
    """
    relevant = [g for g in gadgets
                if channel in {c.value for c in g.channels}]
    return any(leaks_under(g, defense) for g in relevant)


@dataclass
class FuzzResult:
    """What one executor run produced (the corpus layer persists it)."""

    config: FuzzConfig
    coverage: CoverageMap
    disagreements: List[Disagreement]
    #: Coverage-novel specs, in admission order (the replayable corpus).
    admitted: List[CandidateSpec]
    executed: int = 0
    simulated: int = 0
    build_errors: int = 0
    sim_errors: int = 0
    repair_audits: int = 0
    repair_skips: int = 0


class FuzzExecutor:
    """Drives draws 0..budget-1 of one :class:`FuzzConfig`."""

    def __init__(self, config: FuzzConfig,
                 registry: Optional[StatsRegistry] = None):
        self.config = config
        self.coverage = CoverageMap()
        self.parents: List[CandidateSpec] = []
        self.disagreements: List[Disagreement] = []
        self.admitted: List[CandidateSpec] = []
        self._seen_specs: set = set()
        self._finding_keys: set = set()
        self._repair_spent = 0
        registry = registry if registry is not None else StatsRegistry()
        scope = registry.scope("fuzz")
        self.stats: Dict[str, object] = {}
        for name, desc in (
                ("executed", "candidates drawn and linted"),
                ("mutated", "candidates produced by mutation"),
                ("simulated", "candidates run on the simulator"),
                ("sim_skipped", "simulator runs elided (coverage gate)"),
                ("new_coverage", "candidates that lit new analyzer features"),
                ("build_errors", "specs the generator failed to build"),
                ("sim_errors", "simulator runs that raised (counted, "
                               "not fatal)"),
                ("disagreements", "minimized analyzer/simulator divergences"),
                ("dup_findings", "disagreements deduplicated by signature"),
                ("repair_audits", "repair soundness audits performed"),
                ("repair_findings", "repair audits that found unsoundness")):
            self.stats[name] = scope.scalar(name, desc)
        scope.formula("frontier", lambda: self.coverage.frontier,
                      "distinct analyzer features ever observed")
        self.registry = registry
        # Warm in-memory summary cache: fuzz candidates are inline (no
        # BL/RET), so their section labels become partition boundaries and
        # splice/knob mutations that keep a section's bytes intact re-lint
        # it from cache.  Books into the ``analysis.modular.*`` scope.
        from repro.analysis.modular import SummaryCache
        from repro.telemetry.analysis import ModularStats
        self.summaries = SummaryCache()
        self.modular_stats = ModularStats(registry)

    # -- candidate stream -------------------------------------------------

    def _draw(self, k: int) -> Optional[CandidateSpec]:
        rng = stream(self.config.seed, "fuzz", "cand", k)
        if (k >= self.config.warmup and self.parents
                and rng.random() < self.config.mutate_prob):
            parent = rng.choice(self.parents)
            spec = mutate(parent, rng, donors=self.parents)
            if spec is not None:
                self.stats["mutated"].inc()  # type: ignore[union-attr]
                return spec
        return sample_spec(rng, self.config.bias)

    def _admit(self, spec: CandidateSpec) -> None:
        key = repr(spec.to_dict())
        if key in self._seen_specs:
            return
        self._seen_specs.add(key)
        self.admitted.append(spec)
        self.parents.append(spec)
        if len(self.parents) > self.config.max_parents:
            del self.parents[0]

    # -- oracles ----------------------------------------------------------

    def _lint(self, candidate: FuzzCandidate
              ) -> Tuple[List[Gadget], List[str]]:
        """Static oracle with the coverage sink installed.

        Runs summary-backed against the executor-lifetime cache, with the
        candidate's label addresses as partition boundaries — verdicts
        are byte-identical to whole-program by the modular-differential
        contract (the drill corpus is one of its suites).
        """
        from repro.analysis.options import AnalysisOptions
        program = candidate.attack.builder_program
        program.link()
        from repro.isa.instructions import INSTR_BYTES
        boundaries = [program.base_address + index * INSTR_BYTES
                      for index in program.labels.values()]
        options = AnalysisOptions.summary_backed(
            cache=self.summaries, boundaries=boundaries,
            stats=self.modular_stats)
        with hooks.coverage(self.coverage.observe):
            gadgets = find_gadgets(program, candidate.secret_ranges,
                                   options=options)
        return gadgets, self.coverage.commit()

    def _execute(self, candidate: FuzzCandidate,
                 defense: DefenseKind) -> Optional[bool]:
        """Dynamic oracle; ``None`` when the simulator itself failed."""
        try:
            return run_attack_program(candidate.attack, defense).leaked
        except SimulationError:
            self.stats["sim_errors"].inc()  # type: ignore[union-attr]
            return None

    # -- triage -----------------------------------------------------------

    def _finding_key(self, candidate: FuzzCandidate, defense: DefenseKind,
                     kind: str) -> Tuple:
        """Equivalence signature: one minimized reproducer per bug shape.

        Two candidates differing only in training length or pad depth
        exercise the same analyzer defect; re-shrinking each would burn
        a ddmin pass per duplicate (the drill's biased generator mints
        dozens).  Template identity plus the leak-relevant knobs is the
        right granularity: residual/barrier/flip each select different
        verdict logic in the analyzer.
        """
        sections = tuple((s.template, s.residual, s.barrier, s.flip)
                         for s in candidate.spec.sections)
        return (kind, defense.value, sections)

    def _triage(self, candidate: FuzzCandidate, defense: DefenseKind,
                static_leaked: bool, dynamic_leaked: bool,
                kind: Optional[str] = None) -> None:
        kind = kind or (SOUNDNESS if dynamic_leaked else PRECISION)
        key = self._finding_key(candidate, defense, kind)
        if (key in self._finding_keys
                or len(self.disagreements) >= self.config.max_findings):
            self.stats["dup_findings"].inc()  # type: ignore[union-attr]
            return
        self._finding_keys.add(key)
        minimized = minimize_source(
            candidate, defense,
            static_leaked=static_leaked, dynamic_leaked=dynamic_leaked,
            max_evals=self.config.minimize_evals)
        self.disagreements.append(Disagreement(
            kind=kind, defense=defense,
            static_leaked=static_leaked, dynamic_leaked=dynamic_leaked,
            spec=candidate.spec, source_text=minimized.text,
            secret_ranges=list(candidate.secret_ranges),
            channel=candidate.attack.channel,
            benign_values=list(candidate.attack.benign_values),
            secret_value=candidate.attack.secret_value,
            secret_address=candidate.attack.secret_address,
            original_lines=minimized.original_lines,
            minimized_lines=minimized.minimized_lines,
            injected=sorted(self.config.inject)))
        self.stats["disagreements"].inc()  # type: ignore[union-attr]

    def _audit_repair(self, candidate: FuzzCandidate,
                      defense: DefenseKind) -> None:
        """Fuzz the repair pipeline's soundness on a leaking candidate.

        ``plan`` promises a program that no longer leaks under
        ``defense``; hold it to that with both oracles.  An
        :class:`AnalysisError` (no sufficient fix exists) is a legitimate
        refusal, not a finding.
        """
        if self._repair_spent >= self.config.repair_budget:
            return
        self._repair_spent += 1
        self.stats["repair_audits"].inc()  # type: ignore[union-attr]
        program = candidate.attack.builder_program
        try:
            result = repair_mod.plan(program, candidate.secret_ranges,
                                     defense=defense)
        except AnalysisError:
            return
        repaired_attack = replace(candidate.attack,
                                  builder_program=result.repaired)
        repaired = FuzzCandidate(
            spec=candidate.spec, attack=repaired_attack,
            secret_ranges=candidate.secret_ranges,
            source_text=candidate.source_text)
        static_after = static_verdict(
            find_gadgets(result.repaired, candidate.secret_ranges),
            candidate.attack.channel, defense)
        dynamic_after = self._execute(repaired, defense)
        if static_after or dynamic_after:
            self.stats["repair_findings"].inc()  # type: ignore[union-attr]
            self._triage(repaired, defense,
                         static_leaked=static_after,
                         dynamic_leaked=bool(dynamic_after),
                         kind=REPAIR_UNSOUND)

    # -- the run ----------------------------------------------------------

    def step(self, k: int) -> None:
        """Draw, lint, (maybe) execute, and triage candidate ``k``."""
        spec = self._draw(k)
        if spec is None:  # mutation dead-ends cannot happen today, but
            return        # the stream must stay aligned if they ever do
        self.stats["executed"].inc()  # type: ignore[union-attr]
        try:
            candidate = build(spec)
        except FuzzError:
            self.stats["build_errors"].inc()  # type: ignore[union-attr]
            return
        gadgets, new_features = self._lint(candidate)
        if new_features:
            self.stats["new_coverage"].inc()  # type: ignore[union-attr]
            self._admit(spec)
        simulate = bool(new_features) or k % self.config.sim_every == 0
        if not simulate:
            self.stats["sim_skipped"].inc()  # type: ignore[union-attr]
            return
        channel = candidate.attack.channel
        audited = False
        for defense in self.config.defenses:
            static_leaked = static_verdict(gadgets, channel, defense)
            dynamic_leaked = self._execute(candidate, defense)
            self.stats["simulated"].inc()  # type: ignore[union-attr]
            if dynamic_leaked is None:
                continue
            if static_leaked != dynamic_leaked:
                self._triage(candidate, defense, static_leaked,
                             dynamic_leaked)
            elif (static_leaked and not audited
                    and defense is not DefenseKind.NONE):
                audited = True
                self._audit_repair(candidate, defense)

    def run(self, on_step=None) -> FuzzResult:
        """Drive the full budget; ``on_step(k)`` pulses after each draw
        (the campaign worker's heartbeat hook)."""
        with hooks.inject(*self.config.inject):
            for k in range(self.config.budget):
                self.step(k)
                if on_step is not None:
                    on_step(k)
        return FuzzResult(
            config=self.config, coverage=self.coverage,
            disagreements=self.disagreements, admitted=self.admitted,
            executed=int(self.stats["executed"].value),      # type: ignore
            simulated=int(self.stats["simulated"].value),    # type: ignore
            build_errors=int(self.stats["build_errors"].value),  # type: ignore
            sim_errors=int(self.stats["sim_errors"].value),  # type: ignore
            repair_audits=int(self.stats["repair_audits"].value),  # type: ignore
            repair_skips=self.config.repair_budget - self._repair_spent)


def run_fuzz(config: FuzzConfig,
             registry: Optional[StatsRegistry] = None) -> FuzzResult:
    """One full deterministic fuzzing run under ``config``."""
    return FuzzExecutor(config, registry).run()
