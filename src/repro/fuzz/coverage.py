"""The fuzzer's coverage signal: novel analyzer shapes.

A :class:`CoverageMap` is the sink installed via
:func:`repro.analysis.hooks.coverage` while the executor lints one
candidate.  Features are the opaque strings the analyzer emits
(``win:…`` window shapes, ``taint:…`` flow edges, ``verdict:…``
gadget-class × defense pairs — see :mod:`repro.analysis.hooks` for the
vocabulary).  Observations accumulate in a pending set; :meth:`commit`
folds them into the global map and reports which were *new* — the
novelty signal that admits a candidate into the corpus and marks it as a
mutation parent.

Everything here is deterministic and JSON-serializable so a same-seed
re-run reproduces the exact frontier and shard maps merge exactly.
"""

from __future__ import annotations

from typing import Dict, List, Set


class CoverageMap:
    """Feature → hit-count map with a pending per-candidate set."""

    def __init__(self) -> None:
        self.counts: Dict[str, int] = {}
        self._pending: Set[str] = set()

    # The hooks.CoverageSink callable.
    def observe(self, feature: str) -> None:
        self._pending.add(feature)

    def commit(self) -> List[str]:
        """Fold pending observations in; return the sorted new features."""
        new = sorted(f for f in self._pending if f not in self.counts)
        for feature in self._pending:
            self.counts[feature] = self.counts.get(feature, 0) + 1
        self._pending.clear()
        return new

    def discard(self) -> None:
        """Drop pending observations without folding them in."""
        self._pending.clear()

    @property
    def frontier(self) -> int:
        """Number of distinct features ever observed."""
        return len(self.counts)

    def merge(self, other: "CoverageMap") -> None:
        for feature, count in other.counts.items():
            self.counts[feature] = self.counts.get(feature, 0) + count

    def to_dict(self) -> Dict[str, int]:
        return dict(sorted(self.counts.items()))

    @classmethod
    def from_dict(cls, data: Dict[str, int]) -> "CoverageMap":
        coverage = cls()
        coverage.counts = {str(k): int(v) for k, v in data.items()}
        return coverage
