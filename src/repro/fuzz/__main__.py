"""Command-line differential fuzzing: runs, campaigns, replay, drills.

- ``python -m repro.fuzz --run`` — one seeded run; writes a run
  directory (``--out``) and prints the ``fuzz.*`` registry.
- ``python -m repro.fuzz --campaign N`` — N deterministic shards under
  the supervised worker pool, merged into ``<out>/merged``;
  ``--resume`` re-runs only missing/unloadable shards.
- ``python -m repro.fuzz --replay DIR`` — re-run every minimized
  regression stored in a run directory; nonzero when any no longer
  reproduces (the retire-the-regression signal).
- ``python -m repro.fuzz --export-requests FILE`` — dump a run's
  findings as spec-lint service ``lint`` requests (JSONL).
- ``python -m repro.fuzz --smoke`` — the acceptance drill: a clean
  seeded run must grow coverage with zero disagreements and replay
  byte-identically; an injected analyzer bug (``drop-sb-cut``) must be
  caught as a minimized regression and survive replay.
- ``python -m repro.fuzz --selftest`` — the CI gate: the same drill at
  a smaller budget.
- ``python -m repro.fuzz --worker CONFIG.json`` — internal campaign
  shard entry (heartbeats + atomic outcome; see
  :mod:`repro.fuzz.campaign`).

Exit codes: 0 clean, 1 findings/drill failure, 2 usage or harness error.
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import sys
import tempfile
from typing import List, Optional

from repro.analysis.hooks import KNOWN_BUGS
from repro.config import DefenseKind
from repro.errors import FuzzError, ReproError
from repro.fuzz import campaign as campaign_mod
from repro.fuzz import corpus
from repro.fuzz.executor import FuzzConfig, FuzzExecutor
from repro.fuzz.generator import GeneratorBias
from repro.telemetry.registry import StatsRegistry

DEFENSE_NAMES = {d.value: d for d in DefenseKind}

#: The acceptance drill's seeds and budgets (smoke / selftest scale).
SMOKE_SEED = 0xA5A5
SMOKE_BUDGET = 520
SELFTEST_BUDGET = 120
DRILL_BUDGET = 48


def _config_from_args(args: argparse.Namespace) -> FuzzConfig:
    defenses = tuple(DEFENSE_NAMES[name] for name in args.defense) \
        if args.defense else FuzzConfig().defenses
    return FuzzConfig(
        seed=args.seed, budget=args.budget, defenses=defenses,
        sim_every=args.sim_every, inject=tuple(args.inject),
        bias=GeneratorBias(barrier_bias=args.barrier_bias,
                           contention_bias=args.contention_bias))


def _run(config: FuzzConfig, out: Optional[str], quiet: bool = False) -> int:
    registry = StatsRegistry()
    result = FuzzExecutor(config, registry).run()
    if out:
        corpus.save_run(out, result)
    if not quiet:
        print(registry.render(title=f"fuzz run seed={config.seed:#x} "
                                    f"budget={config.budget}"))
        for finding in result.disagreements:
            print(f"  {finding.render()}")
        if out:
            print(f"run directory: {out}  (digest {corpus.run_digest(out)})")
    return 1 if result.disagreements else 0


def _replay(directory: str) -> int:
    run = corpus.load_run(directory)
    if run.corrupt:
        print(f"note: {run.corrupt} corrupt record(s) skipped")
    if not run.regressions:
        print("replay: no stored regressions")
        return 0
    failures = 0
    for record in run.regressions:
        ok, detail = corpus.replay_regression(directory, record)
        print(f"  {'ok  ' if ok else 'GONE'} {record['file']}: {detail}")
        failures += 0 if ok else 1
    print(f"replay: {len(run.regressions) - failures}/"
          f"{len(run.regressions)} regression(s) still reproduce")
    return 1 if failures else 0


def _campaign(args: argparse.Namespace) -> int:
    if not args.out:
        print("error: --campaign requires --out DIR", file=sys.stderr)
        return 2
    config = _config_from_args(args)
    outcomes = campaign_mod.run_campaign(args.out, config, args.campaign,
                                         resume=args.resume)
    merged_dir = os.path.join(args.out, campaign_mod.MERGED_DIR)
    merged = corpus.load_run(merged_dir) if any(o.ok for o in outcomes) \
        else None
    print(campaign_mod.render_outcomes(outcomes, merged))
    if not all(o.ok for o in outcomes):
        return 1
    return 1 if merged is not None and merged.regressions else 0


def _drill(workdir: str, budget: int) -> int:
    """Inject ``drop-sb-cut`` and demand a minimized precision finding.

    The injected analyzer ignores ``SB`` cuts, so a barrier-carrying PHT
    candidate reads as a static leak while the simulator (running the
    true microarchitecture) stays clean — the fuzzer must catch that as
    a minimized ``precision`` regression, and the stored record must
    replay.
    """
    drill_dir = os.path.join(workdir, "drill")
    config = FuzzConfig(
        seed=SMOKE_SEED + 1, budget=budget,
        defenses=(DefenseKind.SPECASAN,), sim_every=1,
        inject=("drop-sb-cut",),
        bias=GeneratorBias(barrier_bias=True))
    result = FuzzExecutor(config, StatsRegistry()).run()
    corpus.save_run(drill_dir, result)
    findings = [d for d in result.disagreements if d.kind == "precision"]
    shrunk = [d for d in findings if d.minimized_lines < d.original_lines]
    print(f"drill: injected drop-sb-cut -> {len(result.disagreements)} "
          f"finding(s), {len(findings)} precision, "
          f"{len(shrunk)} minimized")
    if not findings:
        print("drill: FAIL (injected analyzer bug was not caught)")
        return 1
    if not shrunk:
        print("drill: FAIL (no finding actually shrank)")
        return 1
    code = _replay(drill_dir)
    if code:
        print("drill: FAIL (stored regression did not replay)")
    return code


def _smoke(budget: int, drill_budget: int) -> int:
    failures = 0
    workdir = tempfile.mkdtemp(prefix="repro-fuzz-smoke-")
    try:
        # 1. A clean seeded run: coverage grows, the analyzer and the
        #    simulator agree on every simulated candidate.
        config = FuzzConfig(seed=SMOKE_SEED, budget=budget)
        run_a = os.path.join(workdir, "run-a")
        registry = StatsRegistry()
        result = FuzzExecutor(config, registry).run()
        corpus.save_run(run_a, result)
        print(registry.render(title=f"smoke run ({budget} candidates)"))
        ok = (result.executed >= budget
              and result.coverage.frontier > 0
              and not result.disagreements
              and result.build_errors == 0)
        print(f"clean run: {'ok' if ok else 'FAIL'} "
              f"(executed={result.executed} "
              f"frontier={result.coverage.frontier} "
              f"disagreements={len(result.disagreements)} "
              f"build_errors={result.build_errors})")
        for finding in result.disagreements:
            print(f"  {finding.render()}")
        failures += 0 if ok else 1

        # 2. Determinism: the same seed must reproduce the run directory
        #    byte for byte.
        run_b = os.path.join(workdir, "run-b")
        corpus.save_run(run_b, FuzzExecutor(config, StatsRegistry()).run())
        digest_a, digest_b = corpus.run_digest(run_a), corpus.run_digest(run_b)
        same = digest_a == digest_b
        print(f"determinism: {'ok' if same else 'FAIL'} "
              f"({digest_a} vs {digest_b})")
        failures += 0 if same else 1

        # 3. The injected-bug drill.
        failures += _drill(workdir, drill_budget)

        # 4. Findings export as service subjects (shape check only).
        drill_dir = os.path.join(workdir, "drill")
        requests_path = os.path.join(workdir, "requests.jsonl")
        count = corpus.export_requests(drill_dir, requests_path)
        with open(requests_path, encoding="utf-8") as handle:
            parsed = [json.loads(line) for line in handle if line.strip()]
        ok = count == len(parsed) and all(
            r.get("op") == "lint" and r.get("source") for r in parsed)
        print(f"export: {'ok' if ok else 'FAIL'} ({count} lint request(s))")
        failures += 0 if ok else 1
    finally:
        shutil.rmtree(workdir, ignore_errors=True)
    print(f"smoke: {'PASS' if not failures else 'FAIL'}")
    return 1 if failures else 0


def _worker(config_path: str, out_dir: str) -> int:
    try:
        with open(config_path, encoding="utf-8") as handle:
            config = FuzzConfig.from_dict(json.load(handle))
    except (OSError, json.JSONDecodeError, KeyError, ValueError) as err:
        print(f"worker: unreadable config {config_path}: {err}",
              file=sys.stderr)
        return 2
    return campaign_mod.run_worker(
        out_dir, config,
        heartbeat_path=os.path.join(out_dir, "heartbeat"),
        outcome_path=os.path.join(out_dir, "outcome.json"))


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.fuzz",
        description="Coverage-guided differential fuzzing of spec-lint "
                    "against the simulator.")
    mode = parser.add_mutually_exclusive_group()
    mode.add_argument("--run", action="store_true",
                      help="one seeded fuzzing run (see --seed/--budget)")
    mode.add_argument("--campaign", type=int, metavar="N",
                      help="run N supervised worker shards into --out")
    mode.add_argument("--replay", metavar="DIR",
                      help="re-run every stored regression in DIR")
    mode.add_argument("--export-requests", metavar="FILE",
                      help="write a run's findings as service lint "
                           "requests (needs --out with the run directory)")
    mode.add_argument("--smoke", action="store_true",
                      help="acceptance drill: clean run + determinism + "
                           "injected-bug catch (default budget "
                           f"{SMOKE_BUDGET})")
    mode.add_argument("--selftest", action="store_true",
                      help="CI gate: the smoke drill at a reduced budget")
    mode.add_argument("--worker", metavar="CONFIG",
                      help=argparse.SUPPRESS)
    parser.add_argument("--seed", type=lambda v: int(v, 0),
                        default=SMOKE_SEED, help="root seed (default "
                        f"{SMOKE_SEED:#x})")
    parser.add_argument("--budget", type=int, default=SMOKE_BUDGET,
                        help="candidates to draw")
    parser.add_argument("--out", metavar="DIR",
                        help="run / campaign directory to write")
    parser.add_argument("--resume", action="store_true",
                        help="with --campaign: keep finished shards")
    parser.add_argument("--defense", action="append",
                        choices=sorted(DEFENSE_NAMES),
                        help="defense oracle (repeatable; default "
                             "none+specasan)")
    parser.add_argument("--sim-every", type=int, default=4,
                        help="simulate every Nth candidate regardless of "
                             "coverage (default 4)")
    parser.add_argument("--inject", action="append", default=[],
                        choices=sorted(KNOWN_BUGS),
                        help="inject a named analyzer defect (repeatable)")
    parser.add_argument("--barrier-bias", action="store_true",
                        help="bias generation toward barrier-carrying PHT "
                             "candidates")
    parser.add_argument("--contention-bias", action="store_true",
                        help="bias generation toward contention candidates")
    args = parser.parse_args(argv)

    try:
        if args.worker:
            if not args.out:
                print("error: --worker requires --out DIR", file=sys.stderr)
                return 2
            return _worker(args.worker, args.out)
        if args.smoke:
            return _smoke(args.budget if args.budget != SMOKE_BUDGET
                          else SMOKE_BUDGET, DRILL_BUDGET)
        if args.selftest:
            return _smoke(SELFTEST_BUDGET, DRILL_BUDGET // 2)
        if args.campaign is not None:
            return _campaign(args)
        if args.replay:
            return _replay(args.replay)
        if args.export_requests:
            if not args.out:
                print("error: --export-requests requires --out DIR "
                      "(the run directory)", file=sys.stderr)
                return 2
            count = corpus.export_requests(args.out, args.export_requests)
            print(f"wrote {count} lint request(s) to "
                  f"{args.export_requests}")
            return 0
        return _run(_config_from_args(args), args.out)
    except FuzzError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except ReproError as error:
        print(f"harness error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
