"""Scale-out: a pool of fuzzing shards under the shared worker machinery.

A fuzz campaign splits one budget across N worker subprocesses, each a
``python -m repro.fuzz --worker`` invocation running an independent,
*deterministically derived* slice: shard *i* fuzzes under
``derive_seed(root_seed, "fuzz", "shard", i)``, so the campaign's total
behavior is a pure function of the root seed and the shard count —
workers share nothing at runtime and their results merge exactly.

Supervision reuses :mod:`repro.campaign.pool` wholesale: heartbeat files
pulsed from inside the executor loop, wall/stall liveness reaping,
atomic outcome JSON, and the ``ok | failed | crashed`` exit contract.
A reaped or crashed shard is retried once under the *same* seed (its
work is deterministic, so a flaky-environment retry cannot change the
result it was going to produce); a shard that fails twice is recorded
and excluded from the merge rather than failing the campaign — partial
coverage is still coverage.

``--resume`` re-runs only the shards whose run directories are missing
or unloadable, then re-merges; finished shards are never re-fuzzed.
"""

from __future__ import annotations

import json
import os
import sys
from dataclasses import dataclass, replace
from typing import Dict, List, Optional

from repro.campaign.heartbeat import Heartbeat
from repro.campaign.pool import AdaptiveWait, launch, WorkerProcess
from repro.checkpoint.format import _atomic_write_bytes
from repro.errors import FuzzError
from repro.fuzz import corpus
from repro.fuzz.executor import FuzzConfig, FuzzExecutor
from repro.rng import derive_seed
from repro.telemetry.registry import StatsRegistry

MERGED_DIR = "merged"
CAMPAIGN_FILE = "campaign.json"

#: Per-shard supervision budgets (seconds).  Generous: a shard is pure
#: CPU work, and the heartbeat pulses every candidate.
WALL_TIMEOUT_S = 1800.0
STALL_TIMEOUT_S = 120.0


def shard_dir(root: str, index: int) -> str:
    return os.path.join(root, f"shard-{index:03d}")


def shard_config(config: FuzzConfig, shards: int, index: int) -> FuzzConfig:
    """Shard ``index``'s deterministic slice of ``config``."""
    per_shard = max(1, config.budget // shards)
    return replace(config,
                   seed=derive_seed(config.seed, "fuzz", "shard", index),
                   budget=per_shard,
                   repair_budget=max(1, config.repair_budget // shards))


@dataclass
class ShardOutcome:
    """One shard's terminal state as the campaign saw it."""

    index: int
    ok: bool
    attempts: int
    detail: str = ""


# -- worker side --------------------------------------------------------------


def run_worker(out_dir: str, config: FuzzConfig,
               heartbeat_path: str, outcome_path: str) -> int:
    """The ``--worker`` entry: one shard, heartbeats, atomic outcome."""
    heartbeat = Heartbeat(heartbeat_path, interval=1)
    try:
        executor = FuzzExecutor(config, StatsRegistry())
        result = executor.run(on_step=heartbeat.beat)
        corpus.save_run(out_dir, result)
        outcome = {"status": "ok", "executed": result.executed,
                   "frontier": result.coverage.frontier,
                   "disagreements": len(result.disagreements)}
    except Exception as err:  # the outcome file is the error channel
        outcome = {"status": "crashed", "error": str(err),
                   "error_type": type(err).__name__}
    _atomic_write_bytes(outcome_path,
                        (json.dumps(outcome, sort_keys=True) + "\n")
                        .encode("utf-8"))
    return 0 if outcome["status"] == "ok" else 1


# -- scheduler side -----------------------------------------------------------


def _launch_shard(root: str, config: FuzzConfig, shards: int,
                  index: int) -> WorkerProcess:
    directory = shard_dir(root, index)
    os.makedirs(directory, exist_ok=True)
    cfg = shard_config(config, shards, index)
    cfg_path = os.path.join(directory, "config.json")
    _atomic_write_bytes(cfg_path,
                        (json.dumps(cfg.to_dict(), sort_keys=True) + "\n")
                        .encode("utf-8"))
    argv = [sys.executable, "-m", "repro.fuzz", "--worker", cfg_path,
            "--out", directory]
    return launch(argv,
                  out_path=os.path.join(directory, "outcome.json"),
                  heartbeat_path=os.path.join(directory, "heartbeat"),
                  log_path=os.path.join(directory, "worker.log"),
                  timeout_s=WALL_TIMEOUT_S, stall_timeout_s=STALL_TIMEOUT_S)


def _shard_done(root: str, index: int) -> bool:
    """Is this shard's run directory complete and loadable?"""
    try:
        corpus.load_run(shard_dir(root, index))
        return True
    except FuzzError:
        return False


def run_campaign(root: str, config: FuzzConfig, shards: int,
                 resume: bool = False,
                 max_retries: int = 1) -> List[ShardOutcome]:
    """Fuzz ``shards`` deterministic slices and merge the survivors.

    Returns per-shard outcomes; the merged artifact lands in
    ``<root>/merged``.  Raises :class:`FuzzError` only for harness-level
    problems (an unusable campaign directory), never for shard failures.
    """
    if shards < 1:
        raise FuzzError(f"campaign needs at least one shard, got {shards}")
    os.makedirs(root, exist_ok=True)
    _atomic_write_bytes(
        os.path.join(root, CAMPAIGN_FILE),
        (json.dumps({"schema": corpus.FUZZ_SCHEMA,
                     "config": config.to_dict(), "shards": shards},
                    sort_keys=True) + "\n").encode("utf-8"))

    outcomes: Dict[int, ShardOutcome] = {}
    pending: List[int] = []
    for index in range(shards):
        if resume and _shard_done(root, index):
            outcomes[index] = ShardOutcome(index, ok=True, attempts=0,
                                           detail="resumed: already done")
        else:
            pending.append(index)

    attempts = {index: 0 for index in pending}
    active: Dict[int, WorkerProcess] = {}
    wait = AdaptiveWait()
    while pending or active:
        while pending and len(active) < max(1, min(shards, os.cpu_count()
                                                   or 1)):
            index = pending.pop(0)
            attempts[index] += 1
            active[index] = _launch_shard(root, config, shards, index)
        progressed = False
        for index, worker in list(active.items()):
            exit_ = worker.exit() or worker.liveness_failure()
            if exit_ is None:
                continue
            progressed = True
            if exit_.kind not in ("ok",):
                worker.reap()
            del active[index]
            if exit_.kind == "ok" and _shard_done(root, index):
                outcomes[index] = ShardOutcome(index, ok=True,
                                               attempts=attempts[index])
            elif attempts[index] <= max_retries:
                pending.append(index)
            else:
                outcomes[index] = ShardOutcome(
                    index, ok=False, attempts=attempts[index],
                    detail=f"{exit_.kind}: {exit_.error}")
        wait.sleep(progressed)

    good = [shard_dir(root, i) for i in sorted(outcomes)
            if outcomes[i].ok]
    if good:
        corpus.merge_runs(os.path.join(root, MERGED_DIR), good, config)
    return [outcomes[i] for i in sorted(outcomes)]


def render_outcomes(outcomes: List[ShardOutcome],
                    merged: Optional[corpus.LoadedRun]) -> str:
    lines = []
    for outcome in outcomes:
        status = "ok" if outcome.ok else "FAILED"
        detail = f"  ({outcome.detail})" if outcome.detail else ""
        lines.append(f"shard {outcome.index:3d}: {status} "
                     f"after {outcome.attempts} attempt(s){detail}")
    if merged is not None:
        lines.append(f"merged: {len(merged.specs)} corpus entries, "
                     f"{merged.coverage.frontier} features, "
                     f"{len(merged.regressions)} regression(s)")
    return "\n".join(lines)
