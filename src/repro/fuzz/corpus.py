"""The durable, replayable corpus store of one fuzzing run.

A run directory is the complete record of a campaign shard or a local
run::

    manifest.json        schema tag + the exact FuzzConfig
    coverage.json        the CoverageMap (feature -> hit count)
    corpus.jsonl         admitted specs, checksummed, in admission order
    regressions.jsonl    triaged disagreements, checksummed
    regressions/reg-NNNN.s   one minimized reproducer per finding

Durability follows the repo's store idioms: every file lands via the
same-directory temp + fsync + ``os.replace`` writer
(:func:`repro.checkpoint.format._atomic_write_bytes`), and every JSONL
record wraps its payload with a SHA-256 so :func:`load_run` can attribute
a flipped bit to the line it hit.  Loading is corruption-*tolerant*
(corrupt lines are counted and skipped, mirroring the campaign result
store) — except the manifest, which fails closed via
:class:`~repro.errors.FuzzError`: a run directory whose config cannot be
trusted must not be resumed or merged.

Because candidate generation is a pure function of ``(seed, draw
index)``, the corpus stores *specs*, not programs: :func:`replay` and the
regression re-check rebuild byte-identical ``.s`` text on demand, which
is also what the determinism drill (:func:`run_digest`) relies on.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Dict, Iterable, List, Optional, Tuple

from repro.analysis import hooks
from repro.analysis.gadgets import find_gadgets
from repro.attacks.common import AttackProgram, run_attack_program
from repro.checkpoint.format import _atomic_write_bytes
from repro.config import DefenseKind
from repro.errors import FuzzError, ReproError
from repro.fuzz.coverage import CoverageMap
from repro.fuzz.executor import (
    Disagreement,
    FuzzConfig,
    FuzzResult,
    static_verdict,
)
from repro.fuzz.generator import CandidateSpec
from repro.isa.assembler import assemble

#: Corpus schema tag; bump on any incompatible layout change.
FUZZ_SCHEMA = "repro-fuzz/1"

MANIFEST = "manifest.json"
COVERAGE = "coverage.json"
CORPUS = "corpus.jsonl"
REGRESSIONS = "regressions.jsonl"
REGRESSION_DIR = "regressions"


def _canonical(payload: dict) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def _record_line(payload: dict) -> str:
    blob = _canonical(payload)
    sha = hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]
    return json.dumps({"payload": payload, "sha": sha}, sort_keys=True,
                      separators=(",", ":"))


def _write_text(path: str, text: str) -> None:
    _atomic_write_bytes(path, text.encode("utf-8"))


def _read_records(path: str) -> Tuple[List[dict], int]:
    """Checksummed-JSONL reader: (intact payloads, corrupt line count)."""
    records: List[dict] = []
    corrupt = 0
    try:
        with open(path, encoding="utf-8") as handle:
            lines = handle.read().splitlines()
    except FileNotFoundError:
        return records, corrupt
    for line in lines:
        if not line.strip():
            continue
        try:
            wrapper = json.loads(line)
            payload = wrapper["payload"]
            blob = _canonical(payload)
            expect = hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]
            if wrapper["sha"] != expect:
                raise ValueError("checksum mismatch")
        except (ValueError, KeyError, TypeError):
            corrupt += 1
            continue
        records.append(payload)
    return records, corrupt


# -- saving -------------------------------------------------------------------


def regression_filename(index: int) -> str:
    return f"reg-{index:04d}.s"


def save_run(directory: str, result: FuzzResult) -> None:
    """Persist one executor run as a complete, replayable run directory."""
    os.makedirs(os.path.join(directory, REGRESSION_DIR), exist_ok=True)
    _write_text(os.path.join(directory, MANIFEST), _canonical(
        {"schema": FUZZ_SCHEMA, "config": result.config.to_dict(),
         "executed": result.executed, "simulated": result.simulated,
         "build_errors": result.build_errors,
         "sim_errors": result.sim_errors}) + "\n")
    _write_text(os.path.join(directory, COVERAGE),
                _canonical(result.coverage.to_dict()) + "\n")
    _write_text(os.path.join(directory, CORPUS), "".join(
        _record_line({"id": k, "spec": spec.to_dict()}) + "\n"
        for k, spec in enumerate(result.admitted)))
    lines = []
    for index, finding in enumerate(result.disagreements):
        name = regression_filename(index)
        _write_text(os.path.join(directory, REGRESSION_DIR, name),
                    finding.source_text)
        payload = finding.to_dict()
        payload["file"] = f"{REGRESSION_DIR}/{name}"
        lines.append(_record_line(payload) + "\n")
    _write_text(os.path.join(directory, REGRESSIONS), "".join(lines))


# -- loading ------------------------------------------------------------------


class LoadedRun:
    """One run directory, parsed and integrity-checked."""

    def __init__(self, directory: str, manifest: dict,
                 coverage: CoverageMap, specs: List[CandidateSpec],
                 regressions: List[dict], corrupt: int):
        self.directory = directory
        self.manifest = manifest
        self.coverage = coverage
        self.specs = specs
        self.regressions = regressions
        self.corrupt = corrupt

    @property
    def config(self) -> FuzzConfig:
        return FuzzConfig.from_dict(self.manifest["config"])


def load_run(directory: str) -> LoadedRun:
    """Load a run directory; corrupt JSONL lines are skipped and counted.

    Raises :class:`FuzzError` when the manifest is missing, unreadable,
    or carries a different schema — a config that cannot be trusted
    poisons everything derived from it.
    """
    path = os.path.join(directory, MANIFEST)
    try:
        with open(path, encoding="utf-8") as handle:
            manifest = json.load(handle)
    except (OSError, json.JSONDecodeError) as err:
        raise FuzzError(f"unreadable fuzz manifest {path}: {err}")
    if manifest.get("schema") != FUZZ_SCHEMA:
        raise FuzzError(f"fuzz corpus schema {manifest.get('schema')!r} "
                        f"!= supported {FUZZ_SCHEMA!r} [{path}]")
    try:
        with open(os.path.join(directory, COVERAGE),
                  encoding="utf-8") as handle:
            coverage = CoverageMap.from_dict(json.load(handle))
    except (OSError, json.JSONDecodeError, AttributeError):
        coverage = CoverageMap()
    corpus_records, corrupt_a = _read_records(
        os.path.join(directory, CORPUS))
    specs = []
    for record in corpus_records:
        try:
            specs.append(CandidateSpec.from_dict(record["spec"]))
        except (FuzzError, KeyError, TypeError, ValueError):
            corrupt_a += 1
    regressions, corrupt_b = _read_records(
        os.path.join(directory, REGRESSIONS))
    return LoadedRun(directory, manifest, coverage, specs, regressions,
                     corrupt=corrupt_a + corrupt_b)


# -- replay -------------------------------------------------------------------


def regression_attack(record: dict, source_text: str) -> AttackProgram:
    """Rebuild the oracle-ready attack for one regression record."""
    return AttackProgram(
        name="fuzz-regression", variant=record["kind"],
        builder_program=assemble(source_text),
        secret_value=int(record["secret_value"]),
        secret_address=int(record["secret_address"]),
        channel=record["channel"],
        benign_values=[int(v) for v in record["benign_values"]],
        description="replayed minimized fuzz finding")


def replay_regression(directory: str, record: dict) -> Tuple[bool, str]:
    """Re-run one stored finding; ``(still_disagrees, detail)``.

    The stored verdict pair must reproduce *exactly*: same static
    verdict, same simulator verdict, same defense.  A finding that no
    longer reproduces is the signal CI wants after an analyzer fix — the
    committed regression should then be retired.
    """
    path = os.path.join(directory, record["file"])
    try:
        with open(path, encoding="utf-8") as handle:
            source_text = handle.read()
        attack = regression_attack(record, source_text)
        defense = DefenseKind(record["defense"])
        ranges = [(int(r[0]), int(r[1])) for r in record["secret_ranges"]]
        # Reinstate the analyzer the finding was made against: drill
        # regressions record their injected defects and only disagree
        # while those defects are live.
        with hooks.inject(*record.get("injected", ())):
            gadgets = find_gadgets(attack.builder_program, ranges)
            static = static_verdict(gadgets, attack.channel, defense)
        dynamic = run_attack_program(attack, defense).leaked
    except (OSError, KeyError, ValueError, ReproError) as err:
        return False, f"replay failed: {err}"
    if static != record["static_leaked"] or dynamic != record["dynamic_leaked"]:
        return False, (f"verdicts moved: static={static} "
                       f"dynamic={dynamic}, recorded "
                       f"static={record['static_leaked']} "
                       f"dynamic={record['dynamic_leaked']}")
    return True, (f"{record['kind']} under {record['defense']}: "
                  f"static={static} dynamic={dynamic}")


# -- merging / digests / export ----------------------------------------------


def merge_runs(out_dir: str, shard_dirs: Iterable[str],
               config: FuzzConfig) -> LoadedRun:
    """Deterministically fold shard run directories into ``out_dir``.

    Coverage counts add; corpus specs concatenate in shard order with
    exact duplicates dropped; regressions concatenate in shard order and
    re-number their reproducer files.  Shard order is the caller's (the
    campaign sorts by shard index), so the merged artifact is independent
    of completion timing.
    """
    coverage = CoverageMap()
    merged = FuzzResult(config=config, coverage=coverage,
                        disagreements=[], admitted=[])
    seen: set = set()
    for shard_dir in shard_dirs:
        run = load_run(shard_dir)
        coverage.merge(run.coverage)
        merged.executed += int(run.manifest.get("executed", 0))
        merged.simulated += int(run.manifest.get("simulated", 0))
        merged.build_errors += int(run.manifest.get("build_errors", 0))
        merged.sim_errors += int(run.manifest.get("sim_errors", 0))
        for spec in run.specs:
            key = _canonical(spec.to_dict())
            if key not in seen:
                seen.add(key)
                merged.admitted.append(spec)
        for record in run.regressions:
            with open(os.path.join(shard_dir, record["file"]),
                      encoding="utf-8") as handle:
                text = handle.read()
            merged.disagreements.append(_record_to_disagreement(record, text))
    save_run(out_dir, merged)
    return load_run(out_dir)


def _record_to_disagreement(record: dict, source_text: str) -> Disagreement:
    return Disagreement(
        kind=record["kind"], defense=DefenseKind(record["defense"]),
        static_leaked=bool(record["static_leaked"]),
        dynamic_leaked=bool(record["dynamic_leaked"]),
        spec=CandidateSpec.from_dict(record["spec"]),
        source_text=source_text,
        secret_ranges=[(int(r[0]), int(r[1]))
                       for r in record["secret_ranges"]],
        channel=record["channel"],
        benign_values=[int(v) for v in record["benign_values"]],
        secret_value=int(record["secret_value"]),
        secret_address=int(record["secret_address"]),
        original_lines=int(record["original_lines"]),
        minimized_lines=int(record["minimized_lines"]),
        injected=[str(b) for b in record.get("injected", ())])


def run_digest(directory: str) -> str:
    """SHA-256 over every persisted artifact — the determinism witness.

    Two same-seed runs must produce byte-identical corpora; comparing
    digests is how the smoke drill (and any doubting user) checks it.
    """
    digest = hashlib.sha256()
    names = [MANIFEST, COVERAGE, CORPUS, REGRESSIONS]
    reg_dir = os.path.join(directory, REGRESSION_DIR)
    if os.path.isdir(reg_dir):
        names.extend(os.path.join(REGRESSION_DIR, n)
                     for n in sorted(os.listdir(reg_dir)))
    for name in names:
        digest.update(name.encode("utf-8") + b"\x00")
        try:
            with open(os.path.join(directory, name), "rb") as handle:
                digest.update(handle.read())
        except OSError:
            digest.update(b"<absent>")
        digest.update(b"\x00")
    return digest.hexdigest()[:16]


def export_requests(directory: str, out_path: str,
                    deadline_s: Optional[float] = None) -> int:
    """Write every minimized finding as a spec-lint service request.

    One ``op: lint`` JSON line per regression, carrying the minimized
    source, the recorded secret ranges, and the disagreement's defense —
    ready to pipe at ``repro.service`` for confirmation in the always-on
    deployment.  Returns the number of requests written.
    """
    run = load_run(directory)
    lines: List[str] = []
    for index, record in enumerate(run.regressions):
        with open(os.path.join(directory, record["file"]),
                  encoding="utf-8") as handle:
            source = handle.read()
        request: Dict[str, object] = {
            "id": f"fuzz-{index:04d}", "op": "lint", "source": source,
            "defense": record["defense"],
            "secret_ranges": [list(r) for r in record["secret_ranges"]],
            "confirm": True}
        if deadline_s is not None:
            request["deadline_s"] = deadline_s
        lines.append(json.dumps(request, sort_keys=True) + "\n")
    _write_text(out_path, "".join(lines))
    return len(lines)
