"""Template-driven candidate synthesis and the mutation engine.

Candidates follow SpecDoctor's four-step structure — *configure* (data
segments, MTE-tagged secret placement, training tables), *transient
trigger* (a mistrained branch, a late-address store, an uncommitted
store), *secret transmit* (a secret-indexed probe touch or a
secret-operand ``MUL``), *secret receive* (the shared probe array read
back by the leak detector) — instantiated from parameterized section
templates over :class:`~repro.isa.builder.ProgramBuilder`:

===========  ======================================  ==================
template     transient trigger                       knobs
===========  ======================================  ==================
pht          mistrained bounds check (Spectre v1)    residual, pad,
                                                     barrier, flip,
                                                     train_iters
stl          store-to-load bypass (Spectre v4)       residual, pad,
                                                     barrier
sbb          store-buffer sampling (Fallout)         residual, pad
benign       no secret at all (the control)          pad, flip
contention   pht shape, ``MUL`` transmitter (SCC)    pht knobs
btb/rsb/lfb  witness builders, singleton             residual
===========  ======================================  ==================

``pht``/``stl``/``sbb``/``benign`` sections are *spliceable*: up to two
of them share one program (disjoint address arenas, suffixed labels),
which is how the splice mutation crosses corpus entries.  ``contention``
must stand alone — its oracle is the contention-event channel, and a
cache-channel section in the same program would log events the cache
oracle cannot see.  The BTB/RSB/LFB witnesses keep their timing-fragile
fixed layouts, so they stand alone too.

Knob semantics are chosen so *both* oracles move together: ``pad``
stretches the transmit past the ROB bound (48 > 40 means neither the
static window nor the dynamic ROB reaches it), ``barrier`` drops an
``SB`` between ACCESS and transmit (window cut ∧ squashed transmit),
``residual`` re-keys the secret to the accessing pointer's MTE key (the
TikTag same-key residual SpecASan misses), ``flip`` inverts the trained
branch polarity.  Values near the ROB boundary are deliberately not
generated: there the static instruction-count window and the dynamic
occupancy model can legitimately diverge, which would drown the signal
the differential is hunting.

Everything is derived from explicit :mod:`repro.rng` streams; building
the same spec twice yields byte-identical ``.s`` text.
"""

from __future__ import annotations

import random
import struct
from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.analysis.windows import EntryKind
from repro.analysis.witness import build_witness_attack, secret_ranges_of
from repro.attacks.blocks import emit_victim_warmup, heap_array, heap_secret
from repro.attacks.common import (
    AttackProgram,
    emit_transmit,
    make_probe_array,
    PROBE_BASE,
    SLOW_CELLS,
    TAG_SECRET,
)
from repro.config import CORTEX_A76
from repro.errors import FuzzError
from repro.isa.assembler import assemble
from repro.isa.builder import ProgramBuilder
from repro.isa.disasm import disassemble, signature
from repro.mte.allocator import TaggedHeap
from repro.mte.tags import with_key

SECRET_VALUE = 11
TRAIN_CONTENT = 1
SAFE_VALUE = 2

#: Per-section address arenas (clear of the shared probe/slow layouts).
ARENA_BASE = 0x40000
ARENA_STRIDE = 0x8000
#: Per-section never-touched DRAM-latency cells.
SLOW_STRIDE = 0x10000
#: Dummy secret range for candidates that plant no secret at all.
NO_SECRET_BASE = 0x3F000

#: Window-stretch choices: 0/8/16 keep the transmit well inside the
#: 40-entry ROB; 48 pushes it past for both oracles.  Nothing near the
#: boundary (see module docstring).
PAD_CHOICES = (0, 8, 16, 48)
ITER_CHOICES = (5, 7, 9)

SPLICEABLE = ("pht", "stl", "sbb", "benign")
SINGLETONS = ("contention", "btb", "rsb", "lfb")
TEMPLATES = SPLICEABLE + SINGLETONS


@dataclass(frozen=True)
class SectionSpec:
    """One section's template and knob settings (normalized)."""

    template: str
    residual: bool = False
    pad: int = 0
    barrier: bool = False
    flip: bool = False
    train_iters: int = 7

    def to_dict(self) -> dict:
        return {"template": self.template, "residual": self.residual,
                "pad": self.pad, "barrier": self.barrier, "flip": self.flip,
                "train_iters": self.train_iters}

    @classmethod
    def from_dict(cls, data: dict) -> "SectionSpec":
        return cls(template=str(data["template"]),
                   residual=bool(data["residual"]), pad=int(data["pad"]),
                   barrier=bool(data["barrier"]), flip=bool(data["flip"]),
                   train_iters=int(data["train_iters"]))


#: Which knobs each template honours; :func:`normalize` zeroes the rest so
#: specs have one canonical form (mutations of an ignored knob would
#: otherwise mint distinct specs for identical programs).
_KNOBS: Dict[str, Tuple[str, ...]] = {
    "pht": ("residual", "pad", "barrier", "flip", "train_iters"),
    "contention": ("residual", "pad", "barrier", "flip", "train_iters"),
    "stl": ("residual", "pad", "barrier"),
    "sbb": ("residual", "pad"),
    "benign": ("pad", "flip"),
    "btb": ("residual",),
    "rsb": ("residual",),
    "lfb": ("residual",),
}


def normalize(section: SectionSpec) -> SectionSpec:
    knobs = _KNOBS[section.template]
    defaults = SectionSpec(template=section.template)
    return SectionSpec(
        template=section.template,
        residual=section.residual if "residual" in knobs else defaults.residual,
        pad=section.pad if "pad" in knobs else defaults.pad,
        barrier=section.barrier if "barrier" in knobs else defaults.barrier,
        flip=section.flip if "flip" in knobs else defaults.flip,
        train_iters=(section.train_iters if "train_iters" in knobs
                     else defaults.train_iters))


@dataclass(frozen=True)
class CandidateSpec:
    """A full candidate: one or two sections plus the observed channel."""

    sections: Tuple[SectionSpec, ...]

    def __post_init__(self) -> None:
        if not 1 <= len(self.sections) <= 2:
            raise FuzzError(f"candidate must have 1-2 sections, "
                            f"got {len(self.sections)}")
        for section in self.sections:
            if section.template not in TEMPLATES:
                raise FuzzError(f"unknown template {section.template!r}")
        if len(self.sections) > 1 and any(
                s.template in SINGLETONS for s in self.sections):
            raise FuzzError("singleton templates cannot be spliced: "
                            f"{[s.template for s in self.sections]}")

    @property
    def channel(self) -> str:
        first = self.sections[0].template
        return "contention" if first == "contention" else "cache"

    @property
    def label(self) -> str:
        return "+".join(s.template for s in self.sections)

    def to_dict(self) -> dict:
        return {"sections": [s.to_dict() for s in self.sections]}

    @classmethod
    def from_dict(cls, data: dict) -> "CandidateSpec":
        return cls(sections=tuple(SectionSpec.from_dict(s)
                                  for s in data["sections"]))


@dataclass
class FuzzCandidate:
    """One built, text-round-tripped candidate ready for the differential."""

    spec: CandidateSpec
    attack: AttackProgram
    secret_ranges: List[Tuple[int, int]]
    #: The ``.s`` dump; re-assembling it produced ``attack.builder_program``.
    source_text: str


# -- sampling and mutation ----------------------------------------------------


@dataclass(frozen=True)
class GeneratorBias:
    """Distribution tweaks for targeted drills (defaults = broad sweep)."""

    #: Probability a fresh candidate is a singleton template.
    singleton_prob: float = 0.18
    #: Probability a spliceable candidate gets a second section.
    second_section_prob: float = 0.30
    barrier_prob: float = 0.15
    #: Force every fresh candidate to a barrier-carrying PHT section (the
    #: drop-sb-cut drill).
    barrier_bias: bool = False
    #: Force every fresh candidate to the contention singleton (the
    #: drop-contention-transmitter drill).
    contention_bias: bool = False


def sample_section(rng: random.Random, template: str,
                   bias: GeneratorBias) -> SectionSpec:
    barrier_prob = 0.85 if bias.barrier_bias else bias.barrier_prob
    return normalize(SectionSpec(
        template=template,
        residual=rng.random() < 0.5,
        pad=rng.choices(PAD_CHOICES, weights=(45, 20, 15, 20))[0],
        barrier=rng.random() < barrier_prob,
        flip=rng.random() < 0.3,
        train_iters=rng.choices(ITER_CHOICES, weights=(2, 6, 2))[0]))


def sample_spec(rng: random.Random,
                bias: Optional[GeneratorBias] = None) -> CandidateSpec:
    """Draw one fresh candidate spec from the (possibly biased) mix."""
    bias = bias or GeneratorBias()
    if bias.barrier_bias:
        section = sample_section(rng, "pht", bias)
        return CandidateSpec(sections=(replace(section, barrier=True),))
    if bias.contention_bias:
        return CandidateSpec(
            sections=(sample_section(rng, "contention", bias),))
    if rng.random() < bias.singleton_prob:
        template = rng.choices(SINGLETONS, weights=(4, 2, 2, 2))[0]
        return CandidateSpec(sections=(sample_section(rng, template, bias),))
    count = 2 if rng.random() < bias.second_section_prob else 1
    sections = tuple(
        sample_section(rng,
                       rng.choices(SPLICEABLE, weights=(40, 25, 20, 15))[0],
                       bias)
        for _ in range(count))
    return CandidateSpec(sections=sections)


#: Mutation operator names, in the order the engine tries them.
MUTATIONS = ("rekey", "stretch", "flip", "barrier", "iters", "drop", "splice")


def mutate(spec: CandidateSpec, rng: random.Random,
           donors: Sequence[CandidateSpec] = (),
           bias: Optional[GeneratorBias] = None
           ) -> Optional[CandidateSpec]:
    """One mutation of ``spec``, or ``None`` when nothing applies.

    Operators mirror the coverage axes: ``rekey`` toggles the MTE
    same-key residual, ``stretch`` moves the transmit across window/ROB
    buckets, ``flip`` inverts branch polarity, ``barrier`` toggles the
    ``SB`` cut, ``iters`` jitters the training loop, ``drop`` sheds a
    spliced section, ``splice`` grafts a donor corpus entry's section.
    """
    del bias  # biases shape fresh sampling only
    index = rng.randrange(len(spec.sections))
    section = spec.sections[index]
    knobs = _KNOBS[section.template]
    for name in rng.sample(MUTATIONS, len(MUTATIONS)):
        if name == "rekey" and "residual" in knobs:
            mutated = replace(section, residual=not section.residual)
        elif name == "stretch" and "pad" in knobs:
            choices = [p for p in PAD_CHOICES if p != section.pad]
            mutated = replace(section, pad=rng.choice(choices))
        elif name == "flip" and "flip" in knobs:
            mutated = replace(section, flip=not section.flip)
        elif name == "barrier" and "barrier" in knobs:
            mutated = replace(section, barrier=not section.barrier)
        elif name == "iters" and "train_iters" in knobs:
            choices = [i for i in ITER_CHOICES if i != section.train_iters]
            mutated = replace(section, train_iters=rng.choice(choices))
        elif name == "drop" and len(spec.sections) == 2:
            keep = spec.sections[1 - index]
            return CandidateSpec(sections=(keep,))
        elif name == "splice":
            if len(spec.sections) != 1 \
                    or section.template not in SPLICEABLE:
                continue
            grafts = [d.sections[0] for d in donors
                      if len(d.sections) == 1
                      and d.sections[0].template in SPLICEABLE
                      and d.sections[0] != section]
            if not grafts:
                continue
            graft = rng.choice(grafts)
            return CandidateSpec(sections=(section, graft))
        else:
            continue
        sections = list(spec.sections)
        sections[index] = normalize(mutated)
        if tuple(sections) == spec.sections:
            continue
        return CandidateSpec(sections=tuple(sections))
    return None


# -- section emitters ---------------------------------------------------------

#: Disjoint per-section register banks.  The static taint is
#: path-insensitive: the CFG's return edges connect every RET to every
#: return site, so a register assigned a tagged pointer in one section
#: would merge into another section's access value-sets and mint spurious
#: cross-section "residual" accesses (static leak, no dynamic
#: counterpart).  Giving each section its own registers makes that flow
#: impossible by construction.  X3/X6/X7/X8 (probe base and transmit
#: scratches), X24/X25 (loop counter/offset) and X30 (link) are shared —
#: they only ever carry probe addresses or small integers, which both
#: sections' value-sets already agree on.
_BANK_NAMES = ("idx", "size", "ptr", "val", "wptr", "wdst",
               "cell", "tb1", "tb2", "a", "b", "c")
_BANKS = (
    ("X0", "X1", "X2", "X5", "X9", "X10",
     "X11", "X12", "X13", "X14", "X15", "X16"),
    ("X4", "X17", "X18", "X19", "X20", "X21",
     "X22", "X23", "X26", "X27", "X28", "X29"),
)


def _regs(i: int) -> Dict[str, str]:
    return dict(zip(_BANK_NAMES, _BANKS[i]))


def _arena(index: int) -> int:
    return ARENA_BASE + index * ARENA_STRIDE


def _slow_segment(b: ProgramBuilder, name: str, base: int,
                  values: Sequence[int]) -> None:
    """Back ``count`` never-touched DRAM-latency cells at ``base``."""
    count = max(2, len(values))
    payload = bytearray(count * 4096)
    for cell, value in enumerate(values):
        payload[cell * 4096:cell * 4096 + 8] = struct.pack(
            "<Q", value & (2 ** 64 - 1))
    b.bytes_segment(name, base, bytes(payload))


def _emit_pht(b: ProgramBuilder, sec: SectionSpec, i: int,
              contention: bool = False
              ) -> Tuple[List[Tuple[int, int]], List[int]]:
    """Mistrained bounds check: training loop + OOB final iteration.

    The victim array and the secret are consecutive MTE-heap allocations;
    index 16 walks off the array into the secret granule.  ``residual``
    forces the secret onto the array's tag (same-key).  The transmit is a
    probe touch, or a secret-operand ``MUL`` for the contention variant.
    """
    arena = _arena(i)
    heap = TaggedHeap(arena, 0x1000, CORTEX_A76.mte)
    array = heap_array(b, heap, f"array{i}",
                       bytes([TRAIN_CONTENT] * 16))
    secret = heap_secret(b, heap, SECRET_VALUE,
                         tag=array.tag if sec.residual else None,
                         name=f"secret{i}")
    size_a, size_b = arena + 0x2000, arena + 0x3040
    b.words_segment(f"size_a{i}", size_a, [16])
    b.words_segment(f"size_b{i}", size_b, [16])
    iters = sec.train_iters
    oob = secret.address - array.address
    idx_base, ptr_base = arena + 0x2800, arena + 0x2A00
    b.words_segment(f"idx{i}", idx_base,
                    [1 + (k % 3) for k in range(iters)] + [oob])
    b.words_segment(f"ptr{i}", ptr_base, [size_a] * iters + [size_b])

    R = _regs(i)
    emit_victim_warmup(b, secret.pointer, ptr_reg=R["wptr"],
                       dest_reg=R["wdst"])
    b.li(R["ptr"], array.pointer, note="victim array (malloc-tagged)")
    if not contention:
        b.li("X3", PROBE_BASE)
    b.li(R["tb1"], idx_base)
    b.li(R["tb2"], ptr_base)
    b.li("X25", 0, note="iteration counter")
    loop = f"loop{i}"
    skip, body, after = f"skip{i}", f"body{i}", f"after{i}"
    # Two deliberate structural choices keep spliced sections independent:
    #
    # - Exit check at the TOP with an unconditional backedge: the exit
    #   branch is not-taken while training, matching the PHT's
    #   weakly-not-taken reset state, so the frontend never runs ahead
    #   into the next section on a wrong path (wrong-path fetch there
    #   pollutes the RSB/BHB and de-trains this very loop — a real
    #   gshare effect, not a leak).
    # - The victim gadget is INLINE rather than behind BL/RET: the static
    #   CFG routes every RET to every return site, so a called gadget
    #   would join the other section's register state (or TOP) into this
    #   loop and wreck the value-sets both ways.  RSB coverage comes from
    #   the dedicated rsb singleton template instead.
    b.label(loop)
    b.cmp("X25", imm=iters + 1)
    b.b_cond("HS", after)
    b.lsl("X24", "X25", imm=3)
    b.ldr(R["idx"], R["tb1"], rm="X24", note="index for this run")
    b.ldr(R["cell"], R["tb2"], rm="X24", note="which size cell to read")
    b.ldr(R["size"], R["cell"], note="slow size load (delays the condition)")
    b.cmp(R["idx"], R["size"])
    if sec.flip:
        b.b_cond("LO", body, note="mistrained branch (trained taken)")
        b.b(skip)
        b.label(body)
    else:
        b.b_cond("HS", skip, note="mistrained branch")
    b.ldrb(R["val"], R["ptr"], rm=R["idx"], note="ACCESS: load array[X]")
    if sec.barrier:
        b.sb(note="speculation barrier inside the window")
    b.nops(sec.pad)
    if contention:
        b.mul(R["a"], R["val"], R["val"], note="TRANSMIT: contention channel")
    else:
        emit_transmit(b, R["val"], "X3")
    b.label(skip)
    b.add("X25", "X25", imm=1)
    b.b(loop)
    b.label(after)
    return [(secret.address, secret.address + 16)], [TRAIN_CONTENT]


def _emit_contention(b: ProgramBuilder, sec: SectionSpec, i: int
                     ) -> Tuple[List[Tuple[int, int]], List[int]]:
    return _emit_pht(b, sec, i, contention=True)


def _emit_stl(b: ProgramBuilder, sec: SectionSpec, i: int
              ) -> Tuple[List[Tuple[int, int]], List[int]]:
    """Store-to-load bypass: late-address store over a stale secret.

    ``residual`` reads through an untagged (key-0) pointer — outside the
    protection boundary, so SpecASan lets the bypass through.
    """
    arena = _arena(i)
    stale = arena + 0x100
    if sec.residual:
        victim_ptr, tag = stale, None
    else:
        victim_ptr, tag = with_key(stale, TAG_SECRET), TAG_SECRET
    b.bytes_segment(f"stale{i}", stale,
                    bytes([SECRET_VALUE] + [0] * 15), tag=tag)
    slow = SLOW_CELLS + i * SLOW_STRIDE
    _slow_segment(b, f"slow{i}", slow, [victim_ptr])
    R = _regs(i)
    b.li(R["wptr"], victim_ptr)
    b.ldrb(R["wdst"], R["wptr"], note="victim warms its slot")
    b.sb(note="wait for the warm-up fill")
    b.li("X3", PROBE_BASE)
    b.li(R["a"], SAFE_VALUE, note="the value the store will write")
    b.li(R["ptr"], victim_ptr)
    b.li(R["b"], slow)
    b.ldr(R["c"], R["b"], note="store address arrives late (DRAM round trip)")
    b.str_(R["a"], R["c"], note="victim store: overwrite the secret")
    if sec.barrier:
        b.sb(note="speculation barrier before the bypassing load")
    b.nops(sec.pad)
    b.ldr(R["val"], R["ptr"], note="bypassing load: reads the STALE secret")
    emit_transmit(b, R["val"], "X3")
    return [(stale, stale + 16)], [SAFE_VALUE]


def _emit_sbb(b: ProgramBuilder, sec: SectionSpec, i: int
              ) -> Tuple[List[Tuple[int, int]], List[int]]:
    """Fallout: secret store in the SQ + page-offset-aliased sampler.

    ``residual`` keys the sampler pointer with the victim store's tag so
    loosenet forwarding is allowed; ``pad`` moves the sampler past the
    ROB-bounded forwarding distance.  The aliased granule's allocation tag
    always matches the sampler pointer's key: the sampler is attacker code
    reading attacker memory, and must not raise an architectural tag fault
    (which would halt the core and starve any later section).
    """
    arena = _arena(i)
    secret_addr = arena + 0x100
    victim_slot = arena + 0x1040
    aliased = arena + 0x2040  # same page offset, different granule
    line = bytearray(16)
    line[0] = SECRET_VALUE
    b.bytes_segment(f"sec_sbb{i}", secret_addr, bytes(line), tag=TAG_SECRET)
    b.zero_segment(f"victim_slot{i}", victim_slot, 16, tag=TAG_SECRET)
    if sec.residual:
        sampler = with_key(aliased, TAG_SECRET)
        b.zero_segment(f"aliased{i}", aliased, 16, tag=TAG_SECRET)
    else:
        sampler = aliased
        b.zero_segment(f"aliased{i}", aliased, 16)
    slow = SLOW_CELLS + i * SLOW_STRIDE
    _slow_segment(b, f"slow{i}", slow, [0])
    R = _regs(i)
    b.li(R["wptr"], with_key(secret_addr, TAG_SECRET))
    b.ldrb(R["wdst"], R["wptr"], note="victim holds the secret in a register")
    b.sb(note="wait for the warm-up fill")
    b.li("X3", PROBE_BASE)
    b.li(R["b"], slow)
    b.ldr(R["a"], R["b"], note="commit blocker (DRAM round trip)")
    b.li(R["c"], with_key(victim_slot, TAG_SECRET))
    b.strb(R["wdst"], R["c"], note="victim store: secret enters the SQ")
    b.nops(sec.pad)
    b.li(R["tb1"], sampler, note="attacker address: same page offset")
    b.ldrb(R["val"], R["tb1"], note="loosenet match forwards the victim data")
    emit_transmit(b, R["val"], "X3")
    return [(secret_addr, secret_addr + 16)], [0]


def _emit_benign(b: ProgramBuilder, sec: SectionSpec, i: int
                 ) -> Tuple[List[Tuple[int, int]], List[int]]:
    """The control template: a public reduction loop, nothing secret."""
    arena = _arena(i)
    base = arena + 0x200
    b.words_segment(f"pub{i}", base, [3, 1, 4, 1, 5, 9, 2, 6])
    iters = 4 + sec.pad // 8
    R = _regs(i)
    b.li(R["tb1"], base)
    b.li(R["a"], 0, note="loop counter")
    b.li(R["b"], 0, note="accumulator")
    loop, done = f"bloop{i}", f"bdone{i}"
    b.label(loop)
    b.cmp(R["a"], imm=iters)
    b.b_cond("HS", done, note="exit check at the top (see _emit_pht)")
    b.lsl("X24", R["a"], imm=3)
    b.and_("X24", "X24", imm=0x38, note="wrap inside the table")
    b.ldr(R["val"], R["tb1"], rm="X24")
    b.add(R["b"], R["b"], R["val"])
    if sec.flip:
        b.str_(R["b"], R["tb1"], rm="X24", note="store the running sum back")
    b.add(R["a"], R["a"], imm=1)
    b.b(loop)
    b.label(done)
    return [], []


_EMITTERS: Dict[str, Callable[[ProgramBuilder, SectionSpec, int],
                              Tuple[List[Tuple[int, int]], List[int]]]] = {
    "pht": _emit_pht,
    "contention": _emit_contention,
    "stl": _emit_stl,
    "sbb": _emit_sbb,
    "benign": _emit_benign,
}


# -- candidate assembly -------------------------------------------------------


def build(spec: CandidateSpec) -> FuzzCandidate:
    """Build ``spec`` into a text-round-tripped, runnable candidate.

    Like witness synthesis, the program every oracle sees is the one
    re-assembled from the ``.s`` dump — a corpus entry's recorded text IS
    the candidate, byte for byte.
    """
    first = spec.sections[0]
    if first.template in ("btb", "rsb", "lfb"):
        attack = build_witness_attack(EntryKind(first.template),
                                      first.residual)
        attack.name = "fuzz"
        attack.variant = spec.label
        secret_ranges = secret_ranges_of(attack)
    else:
        b = ProgramBuilder()
        if any(s.template in ("pht", "stl", "sbb") for s in spec.sections):
            make_probe_array(b)
        secret_ranges = []
        benign = {TRAIN_CONTENT}
        for i, section in enumerate(spec.sections):
            if i > 0:
                # Sections model independent victim invocations.  The fence
                # cuts static windows at the boundary AND stops wrong-path
                # frontend runahead from executing the next section early
                # (which would pollute predictor/cache state and make the
                # sections' verdicts interfere).
                b.sb(note="inter-section fence")
            ranges, benign_values = _EMITTERS[section.template](b, section, i)
            secret_ranges.extend(ranges)
            benign.update(benign_values)
        b.halt()
        secret_address = (secret_ranges[0][0] if secret_ranges
                          else NO_SECRET_BASE)
        attack = AttackProgram(
            name="fuzz", variant=spec.label, builder_program=b.build(),
            secret_value=SECRET_VALUE, secret_address=secret_address,
            channel=spec.channel, benign_values=sorted(benign),
            description="fuzz-generated candidate")

    source_text = disassemble(attack.builder_program)
    reassembled = assemble(source_text)
    if signature(reassembled) != signature(attack.builder_program):
        raise FuzzError(
            f"candidate {spec.label} failed its assemble round-trip")
    attack = replace(attack, builder_program=reassembled)
    if not secret_ranges:
        secret_ranges = [(attack.secret_address,
                          attack.secret_address + attack.secret_size)]
    return FuzzCandidate(spec=spec, attack=attack,
                         secret_ranges=secret_ranges,
                         source_text=source_text)
