"""spec-fuzz: a coverage-guided differential fuzzer for spec-lint.

The analyzer and the cycle-level simulator must agree about which
speculative accesses can leak — that agreement is the paper's security
argument, and hand-written suites only check it on the Table-1 cells and
the synthesized witnesses.  This package mass-generates speculative
programs and uses *each tool as the other's oracle*:

- :mod:`repro.fuzz.coverage` — the coverage signal: novel analyzer
  shapes (speculation-window shape, taint-flow edge, gadget × defense
  verdict) observed through the zero-overhead hooks in
  :mod:`repro.analysis.hooks`;
- :mod:`repro.fuzz.generator` — seeded, stream-disciplined template
  synthesis over ``repro.isa`` (SpecDoctor's configure → transient-trigger
  → secret-transmit → secret-receive structure), plus the mutation engine
  that splices, flips, re-keys and stretches corpus entries;
- :mod:`repro.fuzz.executor` — the differential loop: static verdicts vs
  live simulator runs under a configurable defense set, with triage;
- :mod:`repro.fuzz.minimize` — line-level ddmin over the ``.s`` text that
  shrinks a disagreement to a minimized regression;
- :mod:`repro.fuzz.corpus` — the durable, replayable corpus store
  (campaign-style atomic writes + per-record checksums);
- :mod:`repro.fuzz.campaign` — scale-out over the process-isolated
  campaign pool, with crash-safe resume;
- ``python -m repro.fuzz`` — the CLI (``--smoke`` / ``--selftest`` /
  ``--campaign`` / ``--resume`` / ``--replay``).
"""
