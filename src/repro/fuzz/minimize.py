"""Delta-debugging shrink of a differential finding to a minimal ``.s``.

The unit of reduction is the source *line* of the candidate's
round-tripped assembly dump — the representation the corpus records and
the spec-lint service accepts.  Classic ddmin over line subsets: try
removing complements at increasing granularity, keep any subset on which
the *same* disagreement (static verdict vs. simulator verdict, same
defense, same direction) still reproduces, and stop at 1-line
granularity or the evaluation cap.

The predicate is deliberately strict: a reduced program must assemble,
lint, and simulate to **exactly** the recorded verdict pair.  Reductions
that crash the assembler or the simulator are simply "not reproducing" —
ddmin treats every failure as a keep-the-lines signal, so the minimizer
can never turn a soundness finding into a different bug class while
shrinking it.

The ``.base`` directive (line 0 of every dump) is pinned: the analyzer
and the attack-oracle layouts agree on the text base, and a reduction
that relocated the program would perturb every absolute address in the
recorded secret ranges.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List

from repro.analysis.gadgets import find_gadgets
from repro.attacks.common import run_attack_program
from repro.config import DefenseKind
from repro.errors import ReproError
from repro.isa.assembler import assemble

#: Default evaluation budget: each probe costs an assemble + lint and,
#: when the static half matches, one simulation.
DEFAULT_MAX_EVALS = 300


@dataclass
class MinimizedSource:
    """The shrunk reproducer and its reduction accounting."""

    text: str
    original_lines: int
    minimized_lines: int
    evals: int
    reproduced: bool


class _Shrinker:
    def __init__(self, candidate, defense: DefenseKind, *,
                 static_leaked: bool, dynamic_leaked: bool, max_evals: int):
        self.candidate = candidate
        self.defense = defense
        self.static_leaked = static_leaked
        self.dynamic_leaked = dynamic_leaked
        self.max_evals = max_evals
        self.evals = 0
        #: Simulation-cycle cap for *reduced* trials.  A mangled subset
        #: often spins until the 400k-cycle watchdog; the full program's
        #: measured run length (×10, floor 60k) bounds every probe, and
        #: the final keeper is re-validated uncapped.
        self._cycle_cap: int = 0

    def reproduces(self, lines: List[str], capped: bool = True) -> bool:
        """Does this subset still show the recorded verdict pair?"""
        if capped and self.evals >= self.max_evals:
            return False
        self.evals += 1
        from repro.fuzz.executor import static_verdict
        text = "\n".join(lines) + "\n"
        attack = self.candidate.attack
        try:
            program = assemble(text)
            gadgets = find_gadgets(program, self.candidate.secret_ranges)
            if static_verdict(gadgets, attack.channel,
                              self.defense) != self.static_leaked:
                return False
            trial = replace(attack, builder_program=program)
            if capped and self._cycle_cap:
                trial = replace(trial, max_cycles=self._cycle_cap)
            outcome = run_attack_program(trial, self.defense)
            if not self._cycle_cap:
                self._cycle_cap = max(10 * outcome.cycles, 60_000)
            return outcome.leaked == self.dynamic_leaked
        except ReproError:
            return False

    def ddmin(self, lines: List[str], pinned: List[str]) -> List[str]:
        """Standard ddmin over ``lines``; ``pinned`` is always prepended."""
        granularity = 2
        while len(lines) >= 2 and self.evals < self.max_evals:
            chunk = max(1, len(lines) // granularity)
            reduced = False
            start = 0
            while start < len(lines) and self.evals < self.max_evals:
                subset = lines[:start] + lines[start + chunk:]
                if self.reproduces(pinned + subset):
                    lines = subset
                    granularity = max(granularity - 1, 2)
                    reduced = True
                else:
                    start += chunk
            if not reduced:
                if granularity >= len(lines):
                    break
                granularity = min(len(lines), granularity * 2)
        return lines


def minimize_source(candidate, defense: DefenseKind, *,
                    static_leaked: bool, dynamic_leaked: bool,
                    max_evals: int = DEFAULT_MAX_EVALS) -> MinimizedSource:
    """Shrink ``candidate.source_text`` while the disagreement reproduces.

    Always returns a usable reproducer: when the recorded pair does not
    reproduce on the unmodified text (``reproduced=False`` — possible
    only if an injected analyzer bug was lifted between triage and
    shrinking), the original text is returned untouched.
    """
    all_lines = candidate.source_text.rstrip("\n").split("\n")
    pinned, rest = [all_lines[0]], all_lines[1:]
    shrinker = _Shrinker(candidate, defense, static_leaked=static_leaked,
                         dynamic_leaked=dynamic_leaked, max_evals=max_evals)
    if not shrinker.reproduces(pinned + rest):
        return MinimizedSource(text=candidate.source_text,
                               original_lines=len(all_lines),
                               minimized_lines=len(all_lines),
                               evals=shrinker.evals, reproduced=False)
    kept = shrinker.ddmin(rest, pinned)
    # The probes ran under a cycle cap; the keeper must reproduce at the
    # real budget, else fall back to the (validated) full text.
    if kept != rest and not shrinker.reproduces(pinned + kept,
                                                capped=False):
        kept = rest
    return MinimizedSource(text="\n".join(pinned + kept) + "\n",
                           original_lines=len(all_lines),
                           minimized_lines=len(pinned) + len(kept),
                           evals=shrinker.evals, reproduced=True)
