#!/usr/bin/env python3
"""MDS in action: sampling stale Line-Fill Buffer data (RIDL, §3.3.3).

Shows the in-flight data window in detail: a victim load pulls its secret
line through the LFB; the attacker walks the LFB allocator with dummy
misses until the victim's (now stale) entry is reused, then issues a
line-crossing ("assisted") load that samples the previous occupant's bytes
before the new fill arrives.  Under SpecASan the entry's stored allocation
tags gate the forward, so the stale bytes never leave the buffer.

Run:  python examples/mds_sampling.py
"""

from repro import build_system, CORTEX_A76, DefenseKind
from repro.attacks import run_attack_program
from repro.attacks.mds import build_ridl, build_fallout


def main() -> None:
    print("=" * 72)
    print("RIDL: rogue in-flight data load from the Line-Fill Buffer")
    print("=" * 72)
    for defense in (DefenseKind.NONE, DefenseKind.STT,
                    DefenseKind.GHOSTMINION, DefenseKind.SPECASAN):
        outcome = run_attack_program(build_ridl(), defense)
        verdict = (f"LEAKED secret {outcome.recovered}" if outcome.leaked
                   else "blocked")
        print(f"  {defense.value:12s}: {verdict:30s} "
              f"(run took {outcome.cycles} cycles)")
    print()
    print("Note that STT and GhostMinion both leak: the sampling load is")
    print("bound to commit — no branch misprediction covers it — so taint")
    print("tracking never fires and the fill is not 'speculative' to hide.")
    print("SpecASan checks the pointer's key against the allocation tags")
    print("*stored in the LFB entry itself* (stale ones included), which")
    print("mismatch, so the stale forward is refused.")

    print()
    print("=" * 72)
    print("Fallout: sampling the store buffer via partial-address aliasing")
    print("=" * 72)
    for defense in (DefenseKind.NONE, DefenseKind.SPECASAN):
        outcome = run_attack_program(build_fallout(), defense)
        verdict = (f"LEAKED secret {outcome.recovered}" if outcome.leaked
                   else "blocked (store-to-load forwarding requires "
                        "matching address keys, §3.4)")
        print(f"  {defense.value:12s}: {verdict}")


if __name__ == "__main__":
    main()
