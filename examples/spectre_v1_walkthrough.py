#!/usr/bin/env python3
"""Figure 5 walkthrough: SpecASan blocking Spectre-v1, step by step.

Replays the paper's Figure-5 narrative on the simulator: the mistrained
branch, the speculative out-of-bounds ACCESS, the tag mismatch at the L1,
the TSH transitioning the load's ``tcs`` to *unsafe* and signalling the
ROB (SSA = 0), and the final squash that leaves no microarchitectural
trace.

Run:  python examples/spectre_v1_walkthrough.py
"""

from repro import build_system, CORTEX_A76, DefenseKind
from repro.attacks import spectre_v1
from repro.mte.tags import key_of, strip_tag
from repro.pipeline.dyninstr import TagCheckStatus


def main() -> None:
    attack = spectre_v1.build()
    program = attack.builder_program

    print("=" * 72)
    print("The victim gadget (Listing 1)")
    print("=" * 72)
    gadget_index = program.labels["gadget"]
    print(program.listing(start=gadget_index, count=9))

    print()
    print("=" * 72)
    print("Running under SpecASan")
    print("=" * 72)
    system = build_system(CORTEX_A76.with_defense(DefenseKind.SPECASAN))
    core = system.prepare(program)
    core.secret_ranges = [(attack.secret_address, attack.secret_address + 16)]

    # Watch the unsafe access appear in the LSQ.
    unsafe_seen = []
    while not core.halted:
        core.tick()
        for load in core.lsq.lq:
            if (load.tcs is TagCheckStatus.UNSAFE and load.addr is not None
                    and not any(u[1] == load.seq for u in unsafe_seen)):
                unsafe_seen.append((core.cycle, load.seq,
                                    strip_tag(load.addr),
                                    key_of(load.addr)))

    trace = core.policy.tsh.trace
    safe = [t for t in trace if "safe SSA=1" in t[2]]
    unsafe = [t for t in trace if t not in safe]
    print(f"TSH trace: {len(safe)} safe speculative accesses (tcs=safe, "
          "SSA=1) flowed through untouched.")
    print("The interesting events:")
    for cycle, seq, event in unsafe:
        print(f"  cycle {cycle:5d}  seq {seq:4d}  {event}")

    print()
    for cycle, seq, addr, key in unsafe_seen:
        lock = system.hierarchy.read_tag(addr)
        print(f"cycle {cycle}: load #{seq} touched {addr:#x} with key "
              f"{key:#x} but the granule's lock is {lock:#x} -> tcs=UNSAFE, "
              "data withheld, dependents stalled")

    print()
    recovered = [v for v in range(16)
                 if v not in attack.benign_values
                 and system.hierarchy.is_cached(
                     attack.probe_base + v * attack.probe_stride)]
    print(f"probe lines cached after the squash: {recovered or 'none'}")
    print(f"secret value was {attack.secret_value}; "
          f"leaked = {attack.secret_value in recovered}")
    assert attack.secret_value not in recovered
    print("SpecASan blocked Spectre-v1 with no trace left behind.")


if __name__ == "__main__":
    main()
