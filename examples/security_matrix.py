#!/usr/bin/env python3
"""Regenerate the paper's Table 1: 11 attacks x 5 defenses.

Runs every attack PoC (all variants) under every defense and classifies
each cell as full / partial / no mitigation, then compares against the
paper's published matrix cell by cell.

Run:  python examples/security_matrix.py            # three headline rows
      python examples/security_matrix.py --full     # all eleven rows
"""

import sys

from repro.attacks import TABLE1_ROWS
from repro.attacks.matrix import evaluate_matrix, render_matrix
from repro.config import DefenseKind


def main() -> None:
    full = "--full" in sys.argv
    attacks = TABLE1_ROWS if full else ["spectre-v1", "ridl", "smotherspectre"]
    print(f"evaluating {len(attacks)} attack(s) — "
          f"{'the full Table 1' if full else 'pass --full for all 11 rows'}")
    matrix = evaluate_matrix(attacks=attacks)
    print()
    print(render_matrix(matrix))
    print()
    # The unsafe baseline must leak every attack (sanity).
    for attack, row in matrix.items():
        baseline = row[DefenseKind.NONE]
        assert baseline.mitigation.value == "none", (
            f"{attack} did not leak under the unsafe baseline!")
    print("baseline sanity: every attack leaks with no defense — OK")


if __name__ == "__main__":
    main()
