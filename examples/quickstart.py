#!/usr/bin/env python3
"""Quickstart: assemble a program, run it, and block a Spectre-v1 attack.

Run:  python examples/quickstart.py
"""

from repro import build_system, CORTEX_A76, DefenseKind
from repro.attacks import run_attack_program, spectre_v1
from repro.config import describe
from repro.isa import assemble


def main() -> None:
    print("=" * 72)
    print("Simulated CPU (Table 2)")
    print("=" * 72)
    print(describe(CORTEX_A76))

    # --- 1. run a small assembly program on the out-of-order core ---------
    program = assemble("""
        // sum the first 10 integers into X0
            MOV X0, #0
            MOV X1, #10
        loop:
            ADD X0, X0, X1
            SUB X1, X1, #1
            CBNZ X1, loop
        // store and reload through the (tagged) memory hierarchy
            MOV X2, #0x2000
            STR X0, [X2]
            LDR X3, [X2]
            HALT
    """)
    result = build_system(CORTEX_A76).run(program)
    print()
    print(f"program committed {result.instructions} instructions in "
          f"{result.cycles} cycles (IPC {result.ipc:.2f})")
    print(f"X0 = {result.register('X0')}  (expected 55), "
          f"X3 = {result.register('X3')}")
    assert result.register("X0") == 55
    assert result.register("X3") == 55

    # --- 2. the same machine, attacked ------------------------------------
    print()
    print("=" * 72)
    print("Spectre-v1 (Listing 1) against the unsafe baseline and SpecASan")
    print("=" * 72)
    for defense in (DefenseKind.NONE, DefenseKind.SPECASAN):
        outcome = run_attack_program(spectre_v1.build(), defense)
        verdict = ("SECRET LEAKED: recovered nibble(s) "
                   f"{outcome.recovered}" if outcome.leaked
                   else "blocked — no secret-derived probe line was cached")
        print(f"  under {defense.value:10s}: {verdict}")


if __name__ == "__main__":
    main()
