#!/usr/bin/env python3
"""A miniature Figure 6/8 as a crash-safe campaign.

Runs a handful of the synthetic SPEC CPU2017 stand-ins under every defense
class the paper compares (speculative barriers, STT, GhostMinion, SpecASan)
and prints normalized execution time and the fraction of restricted
speculative instructions.

Unlike a bare loop, each (benchmark, defense) cell runs in its own worker
subprocess with a wall-clock timeout and cycle budget, hung workers are
reaped by the heartbeat straggler detector and retried with backoff, every
completed cell is durably checkpointed, and an interrupted sweep resumes:

Run:  python examples/performance_sweep.py                # 4 benchmarks
      python examples/performance_sweep.py --all          # all 15
      # Ctrl-C (or SIGKILL) partway through, then pick up where it left off:
      python examples/performance_sweep.py --resume
"""

import sys

from repro.campaign import CampaignConfig, CampaignScheduler, ResultStore
from repro.workloads import spec_names

QUICK = ("500.perlbench_r", "505.mcf_r", "531.deepsjeng_r", "538.imagick_r")
RUN_DIR = "runs/performance_sweep"


def main() -> int:
    benchmarks = tuple(spec_names()) if "--all" in sys.argv else QUICK
    config = CampaignConfig(
        figure="figure6", benchmarks=benchmarks,
        target_instructions=4000,
        timeout_s=300.0,      # wall-clock budget per cell
        max_cycles=2_000_000,  # cycle budget per simulated run
        max_retries=2,        # backoff + reseed before a cell gives up
        max_workers=2)
    if "--resume" in sys.argv:
        # Everything needed to finish the sweep lives in the run directory.
        config = ResultStore(RUN_DIR).resume_config()
        print(f"resuming {RUN_DIR} ...")
    else:
        print(f"campaign: {len(benchmarks)} workloads x "
              f"{1 + len(config.defenses)} configurations in isolated "
              f"workers (progress checkpoints in {RUN_DIR}/)...")
    scheduler = CampaignScheduler(
        config, RUN_DIR,
        progress=lambda message: print(f"  {message}", file=sys.stderr))
    outcome = scheduler.run(resume="--resume" in sys.argv)
    print()
    print("Normalized execution time (Figure 6):")
    print(outcome.render("normalized"))
    print()
    print("% restricted speculative instructions (Figure 8):")
    print(outcome.render("restricted"))
    if not outcome.ok:
        print("\nsome cells failed permanently; see "
              f"{RUN_DIR}/report.json", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
