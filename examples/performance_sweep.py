#!/usr/bin/env python3
"""A miniature Figure 6/8: defense overheads on SPEC-like workloads.

Runs a handful of the synthetic SPEC CPU2017 stand-ins under every defense
class the paper compares (speculative barriers, STT, GhostMinion, SpecASan)
and prints normalized execution time and the fraction of restricted
speculative instructions.

Run:  python examples/performance_sweep.py                # 4 benchmarks
      python examples/performance_sweep.py --all          # all 15
"""

import sys

from repro.eval import render_rows, run_spec
from repro.workloads import spec_names

QUICK = ["500.perlbench_r", "505.mcf_r", "531.deepsjeng_r", "538.imagick_r"]


def main() -> None:
    benchmarks = spec_names() if "--all" in sys.argv else QUICK
    print(f"simulating {len(benchmarks)} workloads × 5 configurations "
          "(this runs a full warm-up + measured pass each)...")
    rows = run_spec(benchmarks=benchmarks, target_instructions=4000)
    print()
    print("Normalized execution time (Figure 6):")
    print(render_rows(rows, metric="normalized"))
    print()
    print("% restricted speculative instructions (Figure 8):")
    print(render_rows(rows, metric="restricted"))


if __name__ == "__main__":
    main()
