"""Ablations 2 and 4 (DESIGN.md): broadcast latency and tag policy.

**Broadcast latency (§3.4).**  When an unsafe access is found, the ROB
marks dependent memory instructions unsafe; the paper notes a large ROB may
need multiple cycles.  Sweeping 1 → 16 cycles must not change security
(dependents stall on the withheld data regardless) and barely moves benign
performance (unsafe accesses are rare).

**Random vs deterministic tags (§6).**  With IRG-style random tags,
adjacent allocations collide with probability 1/16 and an out-of-bounds
access into a collided neighbour passes the check; deterministic tag
assignment makes adjacent collisions impossible.
"""

from dataclasses import replace

from conftest import SPEC_TARGET

from repro.attacks import run_attack_program, spectre_v1
from repro.config import CORTEX_A76, DefenseKind, MTEConfig, TagPolicy
from repro.mte.allocator import TaggedHeap
from repro.system import build_system
from repro.workloads import SPEC_BY_NAME
from repro.workloads.generator import generate


def _broadcast_sweep():
    results = {}
    profile = SPEC_BY_NAME["520.omnetpp_r"]
    tagged = generate(profile, target_instructions=SPEC_TARGET,
                      mte_instrumented=True).program
    for latency in (1, 4, 16):
        config = replace(
            CORTEX_A76.with_defense(DefenseKind.SPECASAN),
            core=replace(CORTEX_A76.core, unsafe_broadcast_latency=latency))
        cycles = build_system(config).run(tagged, warm_runs=1).cycles
        leaked = run_attack_program(spectre_v1.build(), DefenseKind.SPECASAN,
                                    config=config).leaked
        results[latency] = (cycles, leaked)
    return results


def _collision_rates(pairs: int = 200):
    rates = {}
    for policy in (TagPolicy.RANDOM, TagPolicy.DETERMINISTIC):
        heap = TaggedHeap(0x40000, 1 << 20, MTEConfig(tag_policy=policy))
        collisions = 0
        previous = heap.malloc(16)
        for _ in range(pairs):
            allocation = heap.malloc(16)
            if allocation.tag == previous.tag:
                collisions += 1
            previous = allocation
        rates[policy] = collisions / pairs
    return rates


def test_ablation_broadcast_latency(benchmark):
    results = benchmark.pedantic(_broadcast_sweep, rounds=1, iterations=1)
    print()
    baseline_cycles = results[1][0]
    for latency, (cycles, leaked) in results.items():
        print(f"broadcast latency {latency:2d}: cycles={cycles} "
              f"({cycles / baseline_cycles:.4f}x), spectre-v1 leaked={leaked}")
        # Security never depends on the broadcast speed.
        assert not leaked
        # Benign performance is insensitive (unsafe accesses are rare).
        assert abs(cycles / baseline_cycles - 1.0) < 0.02


def test_ablation_tag_policy_collisions(benchmark):
    rates = benchmark.pedantic(_collision_rates, rounds=1, iterations=1)
    print()
    print(f"adjacent-allocation tag collisions: random={rates[TagPolicy.RANDOM]:.3f} "
          f"deterministic={rates[TagPolicy.DETERMINISTIC]:.3f}")
    # Random tags collide at roughly 1/16 (we exclude only exact repeats of
    # the previous tag, per IRG semantics) — the §6 bypass probability.
    assert 0.0 <= rates[TagPolicy.RANDOM] <= 0.2
    # Deterministic tags never collide between neighbours.
    assert rates[TagPolicy.DETERMINISTIC] == 0.0
