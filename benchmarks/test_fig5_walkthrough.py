"""Figure 5: SpecASan's step-by-step mitigation of Spectre-v1.

Checks the state-machine narrative: the speculative out-of-bounds load's
``tcs`` transitions to *unsafe* (SSA = 0), its data is withheld, dependents
stall, and the eventual squash leaves no probe line in the cache — while
every safe speculative access flowed through with tcs = safe.
"""

from repro.attacks import spectre_v1
from repro.attacks.common import run_attack_program
from repro.config import CORTEX_A76, DefenseKind
from repro.eval import figure5_trace
from repro.system import build_system


def test_fig5_specasan_blocks_spectre_v1(benchmark):
    trace = benchmark.pedantic(figure5_trace, rounds=1, iterations=1)
    events = [event for _, _, event in trace]
    print()
    print(f"TSH processed {len(events)} tag-check outcomes:")
    print(f"  safe   (tcs=safe, SSA=1): {sum('SSA=1' in e for e in events)}")
    print(f"  unsafe (tcs=unsafe, SSA=0): {sum('unsafe' in e for e in events)}")

    # Figure 5's step 4: the mismatched load is flagged unsafe exactly once
    # (the single out-of-bounds attempt), everything else was safe.
    assert sum("unsafe" in event for event in events) == 1
    assert sum("SSA=1" in event for event in events) > 10

    # And steps 7-8: after the flush, no secret-indexed probe line remains.
    outcome = run_attack_program(spectre_v1.build(), DefenseKind.SPECASAN)
    assert not outcome.leaked and not outcome.faulted
    # Whereas the unsafe baseline recovers the exact secret value.
    baseline = run_attack_program(spectre_v1.build(), DefenseKind.NONE)
    assert baseline.recovered == [spectre_v1.SECRET_VALUE]
