"""Resilience matrix: fault type × defense, Table-1 style.

Every microarchitectural fault class (tag bit flips, dropped/delayed tag
responses, MSHR/LFB exhaustion, predictor corruption) is injected into a
Spectre-v1 run under each defense column.  The property asserted is the
fail-safe one: a defending column must never leak the secret, no matter
which fault fires — each cell either completes (fault absorbed as latency
or noise), degrades gracefully to fence semantics, or dies with a typed
error naming the faulty structure.  The undefended baseline column must
still leak when nothing is injected, or the sweep proves nothing.
"""

import pytest

from repro.attacks import spectre_v1
from repro.config import DefenseKind
from repro.resilience import (ALL_FAULT_KINDS, evaluate_resilience_matrix,
                              render_resilience_matrix,
                              run_resilient_attack)

DEFENSES = (DefenseKind.NONE, DefenseKind.FENCE, DefenseKind.SPECASAN)


def test_resilience_matrix(benchmark):
    attack = spectre_v1.build()
    cells = benchmark.pedantic(
        lambda: evaluate_resilience_matrix(attack, defenses=DEFENSES),
        rounds=1, iterations=1)
    print()
    print(render_resilience_matrix(cells))

    # The attack works: the undefended, un-faulted baseline leaks.
    assert cells[(None, DefenseKind.NONE)].leaked, (
        "spectre-v1 did not leak under the unsafe baseline")

    unsafe = []
    for (fault, defense), cell in cells.items():
        # Benign runs under full invariant checking are clean.
        if fault is None and not cell.leaked:
            assert cell.outcome == "completed", (
                f"benign {defense.value} run was not clean: {cell}")
        if defense is DefenseKind.NONE:
            continue
        # Defending columns: never a leak, never an untyped failure.
        if not cell.safe:
            unsafe.append(str(cell))
    assert not unsafe, f"unsafe cells: {unsafe}"


@pytest.mark.parametrize("fault", ALL_FAULT_KINDS, ids=lambda k: k.value)
def test_every_fault_fires_and_stays_safe(fault):
    """Per-fault cell under SpecASan: the fault actually fires and the
    no-leak property survives it (absorbed, degraded, or typed error)."""
    cell = run_resilient_attack(spectre_v1.build(), DefenseKind.SPECASAN,
                                fault)
    assert cell.injected > 0, f"{fault.value} never fired"
    assert cell.safe, f"{fault.value} unsafe: {cell} ({cell.error})"
    if cell.outcome == "invariant-violation":
        assert cell.structure, "violation did not name a structure"
