"""Figure 6: SPEC CPU2017 normalized execution time.

All 15 SPEC-like workloads under the unsafe baseline, Speculative Barriers,
STT, GhostMinion, and SpecASan.  The paper's shape to preserve: barriers
cost multiples, STT costs noticeably more than the shadow/selective
schemes, and GhostMinion ≈ SpecASan sit within a few percent of baseline
(SpecASan geomean 1.8%).
"""

from conftest import SPEC_TARGET

from repro.config import DefenseKind
from repro.eval import figure6, geomean, render_rows


def test_fig6_spec_normalized_time(benchmark):
    rows = benchmark.pedantic(
        lambda: figure6(target_instructions=SPEC_TARGET),
        rounds=1, iterations=1)
    print()
    print(render_rows(rows, metric="normalized"))

    def column(defense):
        return [r.normalized_time for r in rows if r.defense is defense]

    fence = geomean(column(DefenseKind.FENCE))
    stt = geomean(column(DefenseKind.STT))
    ghost = geomean(column(DefenseKind.GHOSTMINION))
    specasan = geomean(column(DefenseKind.SPECASAN))

    # The paper's ordering: barriers >> STT > GhostMinion ~= SpecASan.
    assert fence > 1.4, f"barriers geomean {fence:.3f} too cheap"
    assert fence > stt > 1.0, f"STT ({stt:.3f}) must sit between"
    assert specasan < stt, "SpecASan must beat STT"
    # SpecASan's headline: low single-digit overhead (paper: 1.8%).
    assert 0.99 <= specasan < 1.10, f"SpecASan geomean {specasan:.3f}"
    # GhostMinion is similar to SpecASan (the paper's 'achieve similar
    # performance'); allow a generous band around parity.
    assert 0.97 <= ghost < 1.12, f"GhostMinion geomean {ghost:.3f}"
