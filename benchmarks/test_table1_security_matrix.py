"""Table 1: the full security matrix — 11 attacks × 5 defenses.

Every attack variant is executed under every defense; cells are classified
full (●) / partial (◐) / none (○) and compared against the paper's matrix
cell by cell.  The unsafe baseline is additionally verified to leak every
attack.
"""

from repro.attacks import TABLE1_ROWS
from repro.attacks.matrix import evaluate_matrix, render_matrix
from repro.config import DefenseKind


def test_table1_security_matrix(benchmark):
    matrix = benchmark.pedantic(
        lambda: evaluate_matrix(attacks=TABLE1_ROWS, verify_baseline=True),
        rounds=1, iterations=1)
    print()
    print(render_matrix(matrix))

    mismatches = []
    for attack, row in matrix.items():
        baseline = row[DefenseKind.NONE]
        assert baseline.mitigation.value == "none", (
            f"{attack} did not leak under the unsafe baseline")
        for defense, cell in row.items():
            if defense is DefenseKind.NONE:
                continue
            if not cell.matches_paper:
                mismatches.append((attack, defense.value,
                                   cell.mitigation.value))
    assert not mismatches, f"cells differing from the paper: {mismatches}"
