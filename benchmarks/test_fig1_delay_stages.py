"""Figure 1: where each defense class stops the Spectre-v1 gadget.

The paper's opening figure contrasts delay-ACCESS, delay-USE, and
delay-TRANSMIT defenses with SpecASan's selective delay.  This benchmark
runs the Listing-1 gadget under a representative of each class and checks
the class-defining behaviour empirically.
"""

from repro.config import DefenseKind
from repro.eval import figure1, render_figure1


def test_fig1_delay_stage_comparison(benchmark):
    rows = benchmark.pedantic(figure1, rounds=1, iterations=1)
    print()
    print(render_figure1(rows))

    by_defense = {row.defense: row for row in rows}
    baseline = by_defense[DefenseKind.NONE]
    fence = by_defense[DefenseKind.FENCE]
    stt = by_defense[DefenseKind.STT]
    ghost = by_defense[DefenseKind.GHOSTMINION]
    specasan = by_defense[DefenseKind.SPECASAN]

    # No defense: the full ACCESS -> USE -> TRANSMIT chain runs and leaks.
    assert baseline.access_happened and baseline.transmit_happened
    assert baseline.leaked
    # Delay ACCESS: the speculative access itself never happens.
    assert not fence.access_happened and not fence.leaked
    # Delay USE: access happens, the dependent transmit is held.
    assert stt.access_happened and not stt.transmit_happened
    assert not stt.leaked
    # Delay TRANSMIT: both run, but the trace stays invisible.
    assert ghost.access_happened and ghost.transmit_happened
    assert not ghost.leaked
    # SpecASan: the unsafe access is selectively delayed - like
    # delay-ACCESS security, but only for tag-mismatched accesses.
    assert not specasan.access_happened and not specasan.leaked
