"""Ablation 3 (DESIGN.md): earliest-point vs memory-controller-only checks.

§3.3.1 insists on propagating "the tag check operation to the earliest
point that tag checking is possible" — the caches and the LFB carry lock
sidecars precisely so cache-resident data is still protected.  This
ablation strips the sidecars (checks only at the memory controller) and
shows the security consequence directly: a Spectre-v1 whose secret is
*cache-resident* (warmed by the victim, as in the paper's own PoC) leaks
again, because an L1 hit is never checked.
"""

from repro.attacks import run_attack_program, spectre_v1
from repro.config import CORTEX_A76, DefenseKind
from repro.core.ablations import memory_controller_only_config


def _evaluate():
    earliest = run_attack_program(spectre_v1.build(), DefenseKind.SPECASAN)
    controller_only = run_attack_program(
        spectre_v1.build(), DefenseKind.SPECASAN,
        config=memory_controller_only_config(CORTEX_A76))
    return earliest, controller_only


def test_ablation_tag_check_point(benchmark):
    earliest, controller_only = benchmark.pedantic(_evaluate, rounds=1,
                                                   iterations=1)
    print()
    print(f"earliest-point checks (paper design): leaked={earliest.leaked}")
    print(f"memory-controller-only checks:        leaked={controller_only.leaked}")

    # The paper's design blocks the attack...
    assert not earliest.leaked
    # ...but with checks only at the controller the warm secret line is
    # served from L1 unchecked and the attack succeeds again.
    assert controller_only.leaked
    assert controller_only.recovered == [spectre_v1.SECRET_VALUE]
