"""Figure 7: PARSEC normalized execution time on the 4-core system.

Multi-threaded workloads with real coherence traffic.  Paper headline:
SpecASan's multi-threaded overhead is ~2.5%, with most of it coming from
the baseline ARM MTE machinery rather than SpecASan itself.
"""

from conftest import PARSEC_TARGET

from repro.config import DefenseKind
from repro.eval import figure7, geomean, render_rows


def test_fig7_parsec_normalized_time(benchmark):
    rows = benchmark.pedantic(
        lambda: figure7(target_instructions=PARSEC_TARGET),
        rounds=1, iterations=1)
    print()
    print(render_rows(rows, metric="normalized"))

    def column(defense):
        return [r.normalized_time for r in rows if r.defense is defense]

    fence = geomean(column(DefenseKind.FENCE))
    stt = geomean(column(DefenseKind.STT))
    specasan = geomean(column(DefenseKind.SPECASAN))

    assert fence > 1.3, f"barriers geomean {fence:.3f}"
    assert specasan < fence
    assert specasan <= stt + 0.02
    # Multi-threaded SpecASan stays low single-digit (paper: 2.5%).
    assert 0.97 <= specasan < 1.12, f"SpecASan geomean {specasan:.3f}"
