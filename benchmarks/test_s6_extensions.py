"""§6's discussion items, implemented: LVI and the tagged prefetcher.

**LVI.**  The paper argues SpecASan "effectively neutralizes the primary
mechanism behind many LVI attacks" because speculative consumption of
buffer contents is tag-validated.  Our LVI PoC injects an attacker value
through the stale-LFB window into a victim's bound-to-commit load; every
other studied defense misses it (no branch misprediction anywhere), and
SpecASan's in-buffer lock check stops the injection.

**Prefetcher (future work).**  §6: "hardware prefetchers ... can
speculatively fetch unauthorized memory into microarchitectural buffers,
such as caches.  Integrating security mechanisms into prefetchers could
address these risks while maintaining performance."  We implement a
next-line prefetcher and its SpecASan extension: the unchecked prefetcher
installs lines across tag boundaries (the measured protection gap); the
tag-checking variant suppresses exactly those, keeping the performance
benefit of the in-bound prefetches.
"""

from conftest import SPEC_TARGET

from repro.attacks import run_attack_program
from repro.attacks.lvi import build as build_lvi
from repro.config import CORTEX_A76, DefenseKind
from repro.core.ablations import prefetcher_config
from repro.system import build_system
from repro.workloads import SPEC_BY_NAME
from repro.workloads.generator import generate


def test_s6_lvi_through_the_lfb(benchmark):
    outcomes = benchmark.pedantic(
        lambda: {d: run_attack_program(build_lvi(), d)
                 for d in (DefenseKind.NONE, DefenseKind.STT,
                           DefenseKind.GHOSTMINION, DefenseKind.SPECCFI,
                           DefenseKind.SPECASAN)},
        rounds=1, iterations=1)
    print()
    for defense, outcome in outcomes.items():
        print(f"lvi under {defense.value:12s}: "
              f"{'INJECTED + leaked' if outcome.leaked else 'blocked'}")
    # The injection has no mispredicted branch: the speculation-window
    # defenses never engage.
    for defense in (DefenseKind.NONE, DefenseKind.STT,
                    DefenseKind.GHOSTMINION, DefenseKind.SPECCFI):
        assert outcomes[defense].leaked, defense
    # SpecASan's buffer tag validation stops the injected value (§6).
    assert not outcomes[DefenseKind.SPECASAN].leaked
    assert not outcomes[DefenseKind.SPECASAN].faulted


def _prefetch_sweep():
    profile = SPEC_BY_NAME["523.xalancbmk_r"]
    tagged = generate(profile, target_instructions=SPEC_TARGET,
                      mte_instrumented=True).program
    results = {}
    for label, config in [
        ("no-prefetch", CORTEX_A76.with_defense(DefenseKind.SPECASAN)),
        ("unchecked", prefetcher_config(
            CORTEX_A76.with_defense(DefenseKind.SPECASAN), check_tags=False)),
        ("tag-checked", prefetcher_config(
            CORTEX_A76.with_defense(DefenseKind.SPECASAN), check_tags=True)),
    ]:
        system = build_system(config)
        result = system.run(tagged, warm_runs=0)  # cold run: fills matter
        stats = system.hierarchy.stats
        results[label] = (result.cycles, stats.prefetches,
                          stats.cross_tag_prefetches,
                          stats.prefetches_suppressed)
    return results


def test_s6_tagged_prefetcher(benchmark):
    results = benchmark.pedantic(_prefetch_sweep, rounds=1, iterations=1)
    print()
    print(f"{'config':14s}{'cycles':>10s}{'prefetches':>12s}"
          f"{'cross-tag':>11s}{'suppressed':>12s}")
    for label, (cycles, prefetches, crossing, suppressed) in results.items():
        print(f"{label:14s}{cycles:10d}{prefetches:12d}{crossing:11d}"
              f"{suppressed:12d}")

    base_cycles = results["no-prefetch"][0]
    unchecked = results["unchecked"]
    checked = results["tag-checked"]
    # The prefetcher works and helps the cold run.
    assert unchecked[1] > 0
    assert unchecked[0] < base_cycles
    # The unchecked prefetcher crosses protection boundaries — the gap.
    assert unchecked[2] > 0
    # The SpecASan-extended prefetcher suppresses exactly those fills...
    assert checked[2] == 0
    assert checked[3] > 0
    # ...while keeping (most of) the performance benefit.
    assert checked[0] < base_cycles * 1.01
