"""Ablation 1 (DESIGN.md): selective delay vs delaying every tagged access.

SpecASan's central performance claim (§3.2) is that it delays only
*mismatched* speculative accesses, which are rare in benign code.  This
ablation removes the selectivity — every tagged speculative load waits for
speculation to resolve — and shows the overhead jumping from ~0 toward the
barrier baseline while security is unchanged.
"""

from conftest import SPEC_TARGET

from repro.attacks import run_attack_program, spectre_v1
from repro.config import CORTEX_A76, DefenseKind
from repro.core.ablations import FullDelaySpecASanPolicy
from repro.eval import geomean
from repro.system import build_system
from repro.workloads import SPEC_BY_NAME
from repro.workloads.generator import generate

BENCHMARKS = ["500.perlbench_r", "505.mcf_r", "520.omnetpp_r",
              "531.deepsjeng_r", "538.imagick_r"]


def _sweep():
    rows = {}
    for name in BENCHMARKS:
        profile = SPEC_BY_NAME[name]
        plain = generate(profile, target_instructions=SPEC_TARGET).program
        tagged = generate(profile, target_instructions=SPEC_TARGET,
                          mte_instrumented=True).program
        base = build_system(CORTEX_A76).run(plain, warm_runs=1).cycles
        selective = build_system(
            CORTEX_A76.with_defense(DefenseKind.SPECASAN)).run(
                tagged, warm_runs=1).cycles
        full = build_system(
            CORTEX_A76.with_defense(DefenseKind.SPECASAN),
            policy_factory=FullDelaySpecASanPolicy).run(
                tagged, warm_runs=1).cycles
        rows[name] = (selective / base, full / base)
    return rows


def test_ablation_selective_vs_full_delay(benchmark):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    print()
    print(f"{'benchmark':20s}{'selective':>12s}{'full-delay':>12s}")
    for name, (selective, full) in rows.items():
        print(f"{name:20s}{selective:12.3f}{full:12.3f}")
    selective_geo = geomean([s for s, _ in rows.values()])
    full_geo = geomean([f for _, f in rows.values()])
    print(f"{'geomean':20s}{selective_geo:12.3f}{full_geo:12.3f}")

    # Selectivity is the whole ballgame: selective SpecASan is ~free while
    # the full-delay variant pays double-digit percentages (up to ~30% on
    # the pointer-heavy workloads above).
    assert selective_geo < 1.05
    assert full_geo > selective_geo + 0.05
    assert full_geo > 1.08

    # Security is identical: both block Spectre-v1.
    assert not run_attack_program(
        spectre_v1.build(), DefenseKind.SPECASAN).leaked
    assert not run_attack_program(
        spectre_v1.build(), DefenseKind.SPECASAN,
        policy_factory=FullDelaySpecASanPolicy).leaked
