"""Figure 9: SpecCFI, SpecASan, and their combination on SPEC.

Paper geomeans: SpecCFI 2.6%, SpecASan 1.9%, combined 4.0% — i.e. the
comprehensive protection (Table 1's last column) still costs only a few
percent.
"""

from conftest import SPEC_TARGET

from repro.config import DefenseKind
from repro.eval import figure9, geomean, render_rows


def test_fig9_cfi_combination(benchmark):
    rows = benchmark.pedantic(
        lambda: figure9(target_instructions=SPEC_TARGET),
        rounds=1, iterations=1)
    print()
    print(render_rows(rows, metric="normalized"))

    def column(defense):
        return [r.normalized_time for r in rows if r.defense is defense]

    speccfi = geomean(column(DefenseKind.SPECCFI))
    specasan = geomean(column(DefenseKind.SPECASAN))
    combined = geomean(column(DefenseKind.SPECASAN_CFI))

    # All three are a few percent at most.
    for name, value in [("speccfi", speccfi), ("specasan", specasan),
                        ("specasan+cfi", combined)]:
        assert 0.98 <= value < 1.12, f"{name} geomean {value:.3f}"
    # The combination costs at least as much as each part alone, and no
    # more than roughly their sum (paper: 2.6% + 1.9% -> 4.0%).
    assert combined >= max(speccfi, specasan) - 0.005
    assert combined - 1.0 <= (speccfi - 1.0) + (specasan - 1.0) + 0.02
