"""Table 3: hardware area/power/energy overheads.

The analytical CACTI/McPAT stand-in computes percentage increases per
affected component from Table 2's geometry; the paper's values are
reproduced within tight bands (see tests/hwcost for the per-cell bands).
"""

from repro.hwcost import compute_table3, render_table3


#: The paper's Table 3 (component, metric-prefix, mechanism) -> value.
PAPER = {
    ("L1 D-Cache", "Area", "ARM MTE"): 3.84,
    ("L1 D-Cache", "Static", "ARM MTE"): 3.31,
    ("L1 D-Cache", "Dynamic", "ARM MTE"): 0.74,
    ("LFB", "Area", "SpecASan"): 3.72,
    ("LFB", "Static", "SpecASan"): 3.11,
    ("LFB", "Dynamic", "SpecASan"): 0.68,
    ("ROB/LSQ/MSHR", "Area", "SpecASan"): 0.92,
    ("ROB/LSQ/MSHR", "Static", "SpecASan"): 0.88,
    ("ROB/LSQ/MSHR", "Dynamic", "SpecASan"): 0.81,
    ("CFI Extensions", "Area", "SpecASan+CFI"): 0.10,
    ("Total Core", "Area", "ARM MTE"): 0.17,
    ("Total Core", "Area", "SpecASan"): 0.28,
    ("Total Core", "Area", "SpecASan+CFI"): 0.38,
}


def _cell(rows, component, metric, mechanism):
    for row in rows:
        if row.component == component and metric in row.metric:
            return row.values[mechanism]
    raise KeyError((component, metric))


def test_table3_hardware_cost(benchmark):
    rows = benchmark.pedantic(compute_table3, rounds=1, iterations=1)
    print()
    print(render_table3(rows))
    print()
    print(f"{'cell':44s}{'paper':>8s}{'model':>8s}")
    worst = 0.0
    for (component, metric, mechanism), paper_value in PAPER.items():
        model_value = _cell(rows, component, metric, mechanism)
        print(f"{component + ' ' + metric + ' ' + mechanism:44s}"
              f"{paper_value:8.2f}{model_value:8.2f}")
        if paper_value >= 0.5:
            worst = max(worst, abs(model_value - paper_value) / paper_value)
    # Every substantial cell within 60% relative error (most are <15%) —
    # the quantity reproduced is bit-count-driven ratios, not absolutes.
    assert worst < 0.6, f"worst relative deviation {worst:.0%}"
    # Structural truths must hold exactly.
    assert _cell(rows, "LFB", "Area", "ARM MTE") == 0.0
    assert (_cell(rows, "Total Core", "Area", "SpecASan+CFI")
            > _cell(rows, "Total Core", "Area", "SpecASan")
            > _cell(rows, "Total Core", "Area", "ARM MTE"))
