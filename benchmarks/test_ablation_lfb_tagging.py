"""Ablation 5 (DESIGN.md): SpecASan with LFB tagging disabled (§3.3.3).

The MDS rows of Table 1 depend entirely on the allocation tags SpecASan
stores *in the LFB entries themselves*: with them, stale in-flight data is
gated by a lock comparison; without them, the RIDL/ZombieLoad window
reopens even though every cache-level check is still in place.
"""

from repro.attacks import run_attack_program
from repro.attacks.mds import build_ridl, build_zombieload, SECRET_VALUE
from repro.config import CORTEX_A76, DefenseKind
from repro.core.ablations import lfb_untagged_config, NoLFBTagSpecASanPolicy


def _evaluate():
    outcomes = {}
    for name, builder in (("ridl", build_ridl),
                          ("zombieload", build_zombieload)):
        with_tags = run_attack_program(builder(), DefenseKind.SPECASAN)
        without = run_attack_program(
            builder(), DefenseKind.SPECASAN,
            config=lfb_untagged_config(CORTEX_A76),
            policy_factory=NoLFBTagSpecASanPolicy)
        outcomes[name] = (with_tags, without)
    return outcomes


def test_ablation_lfb_tagging(benchmark):
    outcomes = benchmark.pedantic(_evaluate, rounds=1, iterations=1)
    print()
    for name, (with_tags, without) in outcomes.items():
        print(f"{name:12s} tagged-LFB leaked={with_tags.leaked}   "
              f"untagged-LFB leaked={without.leaked} "
              f"recovered={without.recovered}")
        # With §3.3.3's extension the sampling attack is blocked...
        assert not with_tags.leaked, name
        # ...and removing just the LFB tags reopens it completely.
        assert without.leaked, name
        assert SECRET_VALUE in without.recovered, name
