"""Figure 8: % of restricted speculative instructions, SPEC and PARSEC.

Paper headline numbers: barriers restrict ~39% (SPEC) / ~52% (PARSEC) of
instructions, STT ~18% / ~21%, SpecASan only 0.76% / 0.81% — the clearest
expression of the selective-delay design (§3.2).
"""

from conftest import PARSEC_TARGET, SPEC_TARGET

from repro.config import DefenseKind
from repro.eval import figure8, render_rows


def _average(rows, defense):
    values = [r.restricted_pct for r in rows if r.defense is defense]
    return sum(values) / len(values)


def test_fig8_restriction_fractions(benchmark):
    results = benchmark.pedantic(
        lambda: figure8(
            spec_kwargs=dict(target_instructions=SPEC_TARGET),
            parsec_kwargs=dict(target_instructions=PARSEC_TARGET)),
        rounds=1, iterations=1)
    print()
    print("SPEC CPU2017 (top of Figure 8):")
    print(render_rows(results["spec"], metric="restricted"))
    print()
    print("PARSEC (bottom of Figure 8):")
    print(render_rows(results["parsec"], metric="restricted"))

    for suite in ("spec", "parsec"):
        rows = results[suite]
        fence = _average(rows, DefenseKind.FENCE)
        stt = _average(rows, DefenseKind.STT)
        specasan = _average(rows, DefenseKind.SPECASAN)
        # The paper's orders of magnitude: barriers tens of percent,
        # STT in between, SpecASan well under one percent.
        assert fence > 15.0, f"{suite}: barriers restrict only {fence:.2f}%"
        assert stt < fence, f"{suite}: STT must restrict less than barriers"
        assert specasan < 1.0, (
            f"{suite}: SpecASan restricted {specasan:.2f}% (paper: <1%)")
        assert specasan < stt + 0.5
