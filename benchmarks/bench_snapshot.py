#!/usr/bin/env python
"""Perf trajectory snapshot: the repo's committed performance baseline.

Measures four throughput/latency axes on fixed, seed-pinned workloads and
emits one JSON document in the stable ``repro-bench/1`` schema:

- **cells/sec** — campaign cells measured end-to-end in-process
  (``run_cell`` on small fixed SPEC cells across defenses);
- **cycles/sec** — simulated cycles per wall second on fixed SPEC
  profiles under SpecASan (the simulator kernel's figure of merit);
- **service latency** — request p50/p95/p99 of a live spec-lint service
  under a synthetic witness-lint load (cache-hit and worker-run mix),
  read back from the ``service.latency.request_ms`` histogram;
- **lint throughput** — programs/sec re-linting one-function edits of the
  modular bench fixture, cold (whole-program dataflow from scratch) vs
  warm (summary-backed modular analysis against a persistent cache), with
  the warm/cold speedup gated at ``--min-lint-speedup`` (default 5×).

Usage::

    PYTHONPATH=src python benchmarks/bench_snapshot.py --out BENCH_pr8.json
    PYTHONPATH=src python benchmarks/bench_snapshot.py \
        --out /tmp/BENCH_new.json --baseline BENCH_pr8.json

``--baseline`` compares the fresh snapshot against a committed one and
exits nonzero on schema violations or a cells/sec regression beyond
``--tolerance`` (default 30%) — the CI ``bench-snapshot`` job's gate.
Numbers are machine-dependent; the gate is deliberately loose so only
step-change regressions fail, while the committed trajectory of
BENCH_*.json files records the trend PR over PR.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import platform
import sys
import tempfile
import time
from typing import List, Optional

SCHEMA = "repro-bench/1"

#: Fixed workloads: small enough for CI, fixed seeds for comparability.
CELL_BENCHMARKS = ("505.mcf_r", "502.gcc_r")
CELL_DEFENSES = ("none", "specasan")
CYCLE_PROFILES = ("505.mcf_r", "520.omnetpp_r")
SERVICE_WITNESSES = ("pht", "stl", "btb", "rsb")


# ----------------------------------------------------------------------
# axis 1: campaign cells/sec
# ----------------------------------------------------------------------

def bench_cells(quick: bool) -> dict:
    from repro.campaign.cells import CellSpec
    from repro.campaign.worker import run_cell

    benchmarks = CELL_BENCHMARKS[:1] if quick else CELL_BENCHMARKS
    cells = [CellSpec(kind="spec", benchmark=bench, defense=defense,
                      target_instructions=300, warm_runs=0)
             for bench in benchmarks for defense in CELL_DEFENSES]
    run_cell(cells[0])   # warm imports and caches off the clock
    total_cycles = 0
    start = time.monotonic()
    for cell in cells:
        total_cycles += run_cell(cell)["cycles"]
    wall_s = time.monotonic() - start
    return {"cells": len(cells), "wall_s": round(wall_s, 3),
            "simulated_cycles": total_cycles,
            "cells_per_sec": round(len(cells) / wall_s, 3)}


# ----------------------------------------------------------------------
# axis 2: simulated cycles/sec
# ----------------------------------------------------------------------

def bench_cycles(quick: bool) -> dict:
    from repro.config import CORTEX_A76, DefenseKind
    from repro.system import build_system
    from repro.workloads import SPEC_BY_NAME
    from repro.workloads.generator import generate

    config = CORTEX_A76.with_defense(DefenseKind.SPECASAN)
    target = 1_000 if quick else 3_000
    profiles = CYCLE_PROFILES[:1] if quick else CYCLE_PROFILES
    per_profile = {}
    total_cycles = 0
    total_wall = 0.0
    for name in profiles:
        program = generate(SPEC_BY_NAME[name], seed=0,
                           target_instructions=target,
                           mte_instrumented=True).program
        system = build_system(config)
        core = system.prepare(program)
        start = time.monotonic()
        core.run()
        wall_s = time.monotonic() - start
        cycles = system.result().cycles
        per_profile[name] = {"cycles": cycles, "wall_s": round(wall_s, 3),
                             "cycles_per_sec": round(cycles / wall_s, 1)}
        total_cycles += cycles
        total_wall += wall_s
    return {"profiles": per_profile,
            "simulated_cycles": total_cycles,
            "wall_s": round(total_wall, 3),
            "cycles_per_sec": round(total_cycles / total_wall, 1)}


# ----------------------------------------------------------------------
# axis 3: service request latency under synthetic load
# ----------------------------------------------------------------------

async def _service_load(quick: bool) -> dict:
    from repro.service.server import ServiceConfig, SpecLintService

    witnesses = SERVICE_WITNESSES[:2] if quick else SERVICE_WITNESSES
    repeats = 2 if quick else 4
    with tempfile.TemporaryDirectory(prefix="bench-service-") as state_dir:
        config = ServiceConfig(
            state_dir=state_dir, max_queue=32, max_per_client=32,
            static_workers=2, dynamic_workers=1,
            default_deadline_s=60.0, max_deadline_s=120.0,
            drain_timeout_s=5.0, span_log=False)
        service = SpecLintService(config)
        await service.start()
        assert service.port is not None
        reader, writer = await asyncio.open_connection(
            "127.0.0.1", service.port)

        async def request(payload: dict) -> dict:
            writer.write((json.dumps(payload) + "\n").encode("utf-8"))
            await writer.drain()
            line = await asyncio.wait_for(reader.readline(), 120.0)
            return json.loads(line.decode("utf-8"))

        served = 0
        # Round 1 computes fresh (worker runs); later rounds hit cache —
        # the synthetic mix a steady-state service actually sees.
        for round_no in range(1 + repeats):
            for witness in witnesses:
                response = await request(
                    {"id": f"r{round_no}-{witness}", "op": "lint",
                     "witness": witness})
                if response.get("ok"):
                    served += 1
        hist = service.stats.request_ms
        snapshot = {
            "requests": served,
            "p50_ms": round(hist.p50, 3),
            "p95_ms": round(hist.p95, 3),
            "p99_ms": round(hist.p99, 3),
            "mean_ms": round(hist.mean, 3),
            "observed": int(hist.count),
        }
        writer.close()
        service.request_drain()
        await asyncio.wait_for(service.wait_drained(), 30.0)
        return snapshot


def bench_service(quick: bool) -> dict:
    return asyncio.run(_service_load(quick))


# ----------------------------------------------------------------------
# axis 4: lint throughput, cold whole-program vs warm incremental
# ----------------------------------------------------------------------

def bench_lint(quick: bool) -> dict:
    from repro.analysis.gadgets import find_gadgets
    from repro.analysis.modular import SummaryCache, modular_analysis
    from repro.analysis.modular.fixtures import bench_program
    from repro.analysis.options import AnalysisOptions
    from repro.analysis.taint import analyze

    repeats = 2 if quick else 3
    program, secret_ranges = bench_program()
    # One full lint off the clock: warms imports and interned objects.
    find_gadgets(program, secret_ranges,
                 taint=analyze(program, secret_ranges))
    # Each timed program is the fixture with a different single function
    # edited — the workload an edit-compile-relint loop actually produces.
    edited = [bench_program(edits={index: index + 1})
              for index in range(repeats)]

    start = time.monotonic()
    for prog, ranges in edited:
        find_gadgets(prog, ranges, taint=analyze(prog, ranges))
    cold_s = time.monotonic() - start

    with tempfile.TemporaryDirectory(prefix="bench-lint-") as cache_dir:
        path = os.path.join(cache_dir, "summaries.jsonl")
        cache = SummaryCache(path)
        options = AnalysisOptions.summary_backed(cache=cache)
        run = modular_analysis(program, secret_ranges, options=options)
        find_gadgets(program, secret_ranges, taint=run.result,
                     options=options)
        cache.flush()   # the committed baseline the edits re-lint against

        hits = misses = 0
        start = time.monotonic()
        for prog, ranges in edited:
            warm_cache = SummaryCache(path)
            options = AnalysisOptions.summary_backed(cache=warm_cache)
            run = modular_analysis(prog, ranges, options=options)
            find_gadgets(prog, ranges, taint=run.result, options=options)
            hits += warm_cache.hits
            misses += warm_cache.misses
        warm_s = time.monotonic() - start

    return {"programs": repeats,
            "cold_wall_s": round(cold_s, 3),
            "warm_wall_s": round(warm_s, 3),
            "cold_programs_per_sec": round(repeats / cold_s, 3),
            "warm_programs_per_sec": round(repeats / warm_s, 3),
            "speedup": round(cold_s / warm_s, 2),
            "summary_hits": hits, "summary_misses": misses}


# ----------------------------------------------------------------------
# schema + regression gate
# ----------------------------------------------------------------------

def validate(doc: dict) -> List[str]:
    """Schema errors for one snapshot document (empty = valid)."""
    errors = []

    def positive(path: str, value) -> None:
        if not isinstance(value, (int, float)) or isinstance(value, bool) \
                or value <= 0:
            errors.append(f"{path} must be a positive number, got {value!r}")

    if doc.get("schema") != SCHEMA:
        errors.append(f"schema must be {SCHEMA!r}, got {doc.get('schema')!r}")
    cells = doc.get("cells", {})
    positive("cells.cells_per_sec", cells.get("cells_per_sec"))
    positive("cells.cells", cells.get("cells"))
    cycles = doc.get("cycles", {})
    positive("cycles.cycles_per_sec", cycles.get("cycles_per_sec"))
    positive("cycles.simulated_cycles", cycles.get("simulated_cycles"))
    service = doc.get("service", {})
    positive("service.requests", service.get("requests"))
    for key in ("p50_ms", "p95_ms", "p99_ms"):
        positive(f"service.{key}", service.get(key))
    if service.get("p50_ms", 0) > service.get("p99_ms", 0):
        errors.append("service.p50_ms exceeds service.p99_ms")
    lint = doc.get("lint")
    if lint is not None:   # absent in pre-pr10 baselines
        positive("lint.cold_programs_per_sec",
                 lint.get("cold_programs_per_sec"))
        positive("lint.warm_programs_per_sec",
                 lint.get("warm_programs_per_sec"))
        positive("lint.speedup", lint.get("speedup"))
    return errors


def compare(doc: dict, baseline: dict, tolerance: float) -> List[str]:
    """Regression errors vs a committed baseline (empty = within gate)."""
    errors = []
    new = doc.get("cells", {}).get("cells_per_sec", 0.0)
    old = baseline.get("cells", {}).get("cells_per_sec", 0.0)
    if old > 0 and new < old * (1.0 - tolerance):
        errors.append(
            f"cells/sec regressed beyond {tolerance:.0%}: "
            f"{new:.3f} < {old:.3f} * {1.0 - tolerance:.2f}")
    return errors


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Measure the perf snapshot and emit BENCH_*.json.")
    parser.add_argument("--out", required=True,
                        help="where to write the snapshot JSON")
    parser.add_argument("--baseline", default=None,
                        help="committed BENCH_*.json to gate against")
    parser.add_argument("--tolerance", type=float, default=0.30,
                        help="allowed cells/sec regression fraction "
                             "(default 0.30)")
    parser.add_argument("--quick", action="store_true",
                        help="smaller workloads (local iteration)")
    parser.add_argument("--min-lint-speedup", type=float, default=5.0,
                        help="required warm/cold incremental re-lint "
                             "speedup (default 5.0)")
    parser.add_argument("--label", default="",
                        help="free-form snapshot label (e.g. pr8)")
    args = parser.parse_args(argv)

    print("bench: campaign cells/sec ...", flush=True)
    cells = bench_cells(args.quick)
    print(f"  {cells['cells_per_sec']} cells/s "
          f"({cells['cells']} cells in {cells['wall_s']}s)")
    print("bench: simulated cycles/sec ...", flush=True)
    cycles = bench_cycles(args.quick)
    print(f"  {cycles['cycles_per_sec']} cycles/s "
          f"({cycles['simulated_cycles']} cycles in {cycles['wall_s']}s)")
    print("bench: service latency under synthetic load ...", flush=True)
    service = bench_service(args.quick)
    print(f"  p50={service['p50_ms']}ms p95={service['p95_ms']}ms "
          f"p99={service['p99_ms']}ms over {service['requests']} requests")
    print("bench: lint throughput, cold vs warm incremental ...", flush=True)
    lint = bench_lint(args.quick)
    print(f"  cold {lint['cold_programs_per_sec']} prog/s, "
          f"warm {lint['warm_programs_per_sec']} prog/s "
          f"({lint['speedup']}x, {lint['summary_hits']} hits "
          f"{lint['summary_misses']} misses)")

    doc = {
        "schema": SCHEMA,
        "label": args.label,
        "quick": args.quick,
        "cells": cells,
        "cycles": cycles,
        "service": service,
        "lint": lint,
        "env": {"python": platform.python_version(),
                "implementation": platform.python_implementation(),
                "machine": platform.machine()},
    }
    errors = validate(doc)
    if lint["speedup"] < args.min_lint_speedup:
        errors.append(
            f"lint.speedup {lint['speedup']}x below required "
            f"{args.min_lint_speedup}x (warm incremental re-lint gate)")
    if errors:
        for error in errors:
            print(f"SCHEMA FAIL: {error}", file=sys.stderr)
        return 1
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(doc, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {args.out}")

    if args.baseline:
        with open(args.baseline, encoding="utf-8") as handle:
            baseline = json.load(handle)
        base_errors = validate(baseline)
        if base_errors:
            for error in base_errors:
                print(f"BASELINE SCHEMA FAIL: {error}", file=sys.stderr)
            return 1
        regressions = compare(doc, baseline, args.tolerance)
        if regressions:
            for regression in regressions:
                print(f"REGRESSION: {regression}", file=sys.stderr)
            return 1
        print(f"gate ok: within {args.tolerance:.0%} of "
              f"{os.path.basename(args.baseline)}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
