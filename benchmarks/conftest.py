"""Benchmark-suite configuration.

Each benchmark regenerates one of the paper's tables or figures on the
simulator and prints it; run with ``pytest benchmarks/ --benchmark-only -s``
to see the rendered outputs.  Simulation scale is set per benchmark to keep
the whole suite around ten minutes while preserving the paper's qualitative
shape (see EXPERIMENTS.md for a full-scale run's numbers).
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

#: Instruction targets used by the figure benchmarks (override with the
#: REPRO_SCALE environment variable: 1 = quick, 2 = default, 4 = thorough).
SCALE = int(os.environ.get("REPRO_SCALE", "2"))
SPEC_TARGET = 2000 * SCALE
PARSEC_TARGET = 600 * SCALE
